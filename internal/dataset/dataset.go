// Package dataset synthesizes a delicious.com-style tagged document corpus,
// substituting for the Wetzker et al. crawl the paper demonstrates on
// (public bookmarks of ~950k users; users with 50–200 annotated bookmarks).
//
// The generative model mirrors what makes social-bookmark data learnable:
// each tag is a topic with its own word distribution over a shared
// vocabulary, tag popularity is Zipf-distributed, and a document samples
// its words from a mixture of the topics of its 1–4 tags plus background
// noise. Users own 50–200 documents whose tag mix can be biased per user
// (class skew) — the knob the demo's "class distribution" scenario turns.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Document is one generated text with its ground-truth tags.
type Document struct {
	ID   int
	User int
	Text string
	Tags []string
}

// Corpus is a generated collection plus its generation metadata.
type Corpus struct {
	Docs []Document
	// Tags is the universe of tags, most popular first.
	Tags []string
	// Vocabulary size used during generation.
	VocabSize int
}

// Config drives corpus generation. The zero value is not valid; use
// DefaultConfig and override.
type Config struct {
	// Users is the number of peers owning documents.
	Users int
	// DocsPerUserMin/Max bound each user's collection (the demo filtered
	// delicious users to 50..200 bookmarks; smaller defaults keep unit
	// tests fast while experiments scale up).
	DocsPerUserMin, DocsPerUserMax int
	// NumTags is the tag universe size.
	NumTags int
	// TagZipf is the Zipf exponent of tag popularity (1.0 matches
	// measured social-bookmark distributions; 0 = uniform).
	TagZipf float64
	// TagsPerDocMin/Max bound the number of tags per document.
	TagsPerDocMin, TagsPerDocMax int
	// WordsPerTopic is the size of each tag's characteristic vocabulary.
	WordsPerTopic int
	// SharedWords is the size of the background vocabulary mixed into
	// every document.
	SharedWords int
	// DocLenMin/Max bound document length in words.
	DocLenMin, DocLenMax int
	// NoiseRatio is the fraction of words drawn from the background
	// vocabulary instead of tag topics (0..1). Higher = harder problem.
	NoiseRatio float64
	// UserBias is a Dirichlet-style concentration controlling how skewed
	// each user's tag preferences are: large (>= 10) means all users tag
	// uniformly, small (e.g. 0.1) means each user focuses on a few tags.
	UserBias float64
	// RealWords draws document words from curated English topic
	// vocabularies instead of synthetic tokens, so generated corpora
	// transfer to real English text (used by the CLI's community mode and
	// the public GenerateCorpus API).
	RealWords bool
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig returns a moderate corpus configuration suitable for
// experiments: 0.5–1k documents over a few dozen tags.
func DefaultConfig() Config {
	return Config{
		Users:          16,
		DocsPerUserMin: 50,
		DocsPerUserMax: 200,
		NumTags:        20,
		TagZipf:        1.0,
		TagsPerDocMin:  1,
		TagsPerDocMax:  4,
		WordsPerTopic:  60,
		SharedWords:    200,
		DocLenMin:      40,
		DocLenMax:      150,
		NoiseRatio:     0.35,
		UserBias:       10,
		Seed:           1,
	}
}

func (c *Config) validate() error {
	if c.Users <= 0 {
		return fmt.Errorf("dataset: Users = %d, want > 0", c.Users)
	}
	if c.NumTags <= 1 {
		return fmt.Errorf("dataset: NumTags = %d, want > 1", c.NumTags)
	}
	if c.DocsPerUserMin <= 0 || c.DocsPerUserMax < c.DocsPerUserMin {
		return fmt.Errorf("dataset: bad docs-per-user range [%d,%d]", c.DocsPerUserMin, c.DocsPerUserMax)
	}
	if c.TagsPerDocMin <= 0 || c.TagsPerDocMax < c.TagsPerDocMin {
		return fmt.Errorf("dataset: bad tags-per-doc range [%d,%d]", c.TagsPerDocMin, c.TagsPerDocMax)
	}
	if c.DocLenMin <= 0 || c.DocLenMax < c.DocLenMin {
		return fmt.Errorf("dataset: bad doc-length range [%d,%d]", c.DocLenMin, c.DocLenMax)
	}
	if c.NoiseRatio < 0 || c.NoiseRatio >= 1 {
		return fmt.Errorf("dataset: NoiseRatio = %v, want [0,1)", c.NoiseRatio)
	}
	return nil
}

// tagNames supplies human-readable tag labels reminiscent of delicious
// folksonomies; generation cycles with numeric suffixes past the list.
var tagNames = []string{
	"programming", "design", "music", "politics", "science", "travel",
	"photography", "cooking", "finance", "sports", "health", "education",
	"art", "history", "gaming", "security", "linux", "webdev", "ai",
	"databases", "startups", "climate", "astronomy", "fitness", "crafts",
	"movies", "literature", "economics", "gardening", "architecture",
}

// Generate synthesizes a corpus from cfg.
func Generate(cfg Config) (*Corpus, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	tags := make([]string, cfg.NumTags)
	for i := range tags {
		if i < len(tagNames) {
			tags[i] = tagNames[i]
		} else {
			tags[i] = fmt.Sprintf("%s%d", tagNames[i%len(tagNames)], i/len(tagNames))
		}
	}

	// Topic vocabularies: tag t owns words "w<t>x<j>"; background words are
	// "cmn<j>". Distinct prefixes guarantee topics do not collide, and the
	// stemmer leaves these synthetic word shapes intact. RealWords mode
	// substitutes curated English vocabularies (padded with synthetic
	// tokens past the curated list).
	topicWords := make([][]string, cfg.NumTags)
	for t := range topicWords {
		ws := make([]string, 0, cfg.WordsPerTopic)
		if cfg.RealWords {
			ws = append(ws, realTopicWords[t%len(realTopicWords)]...)
		}
		for j := len(ws); j < cfg.WordsPerTopic; j++ {
			ws = append(ws, fmt.Sprintf("w%dx%d", t, j))
		}
		topicWords[t] = ws[:cfg.WordsPerTopic]
	}
	shared := make([]string, 0, cfg.SharedWords)
	if cfg.RealWords {
		shared = append(shared, realSharedWords...)
	}
	for j := len(shared); j < cfg.SharedWords; j++ {
		shared = append(shared, fmt.Sprintf("cmn%d", j))
	}
	shared = shared[:cfg.SharedWords]

	// Zipf weights over tags.
	tagWeights := make([]float64, cfg.NumTags)
	for i := range tagWeights {
		if cfg.TagZipf == 0 {
			tagWeights[i] = 1
		} else {
			tagWeights[i] = 1 / math.Pow(float64(i+1), cfg.TagZipf)
		}
	}

	corpus := &Corpus{
		Tags:      tags,
		VocabSize: cfg.NumTags*cfg.WordsPerTopic + cfg.SharedWords,
	}
	docID := 0
	for u := 0; u < cfg.Users; u++ {
		// Per-user tag preference: Dirichlet(UserBias * zipf weights),
		// sampled via Gamma draws.
		pref := make([]float64, cfg.NumTags)
		var sum float64
		for i := range pref {
			pref[i] = gammaDraw(rng, math.Max(cfg.UserBias*tagWeights[i], 1e-3))
			sum += pref[i]
		}
		for i := range pref {
			pref[i] /= sum
		}
		nDocs := cfg.DocsPerUserMin + rng.Intn(cfg.DocsPerUserMax-cfg.DocsPerUserMin+1)
		for d := 0; d < nDocs; d++ {
			doc := genDoc(rng, cfg, docID, u, tags, topicWords, shared, pref)
			corpus.Docs = append(corpus.Docs, doc)
			docID++
		}
	}
	return corpus, nil
}

func genDoc(rng *rand.Rand, cfg Config, id, user int, tags []string,
	topicWords [][]string, shared []string, pref []float64) Document {

	nTags := cfg.TagsPerDocMin
	if cfg.TagsPerDocMax > cfg.TagsPerDocMin {
		nTags += rng.Intn(cfg.TagsPerDocMax - cfg.TagsPerDocMin + 1)
	}
	chosen := sampleDistinct(rng, pref, nTags)
	docTags := make([]string, len(chosen))
	for i, t := range chosen {
		docTags[i] = tags[t]
	}

	length := cfg.DocLenMin + rng.Intn(cfg.DocLenMax-cfg.DocLenMin+1)
	var b strings.Builder
	for w := 0; w < length; w++ {
		if w > 0 {
			b.WriteByte(' ')
		}
		if rng.Float64() < cfg.NoiseRatio {
			b.WriteString(shared[rng.Intn(len(shared))])
		} else {
			t := chosen[rng.Intn(len(chosen))]
			b.WriteString(topicWords[t][rng.Intn(len(topicWords[t]))])
		}
	}
	return Document{ID: id, User: user, Text: b.String(), Tags: docTags}
}

// sampleDistinct draws n distinct indices from the categorical distribution
// weights (n is clamped to the support size).
func sampleDistinct(rng *rand.Rand, weights []float64, n int) []int {
	w := append([]float64(nil), weights...)
	if n > len(w) {
		n = len(w)
	}
	out := make([]int, 0, n)
	for len(out) < n {
		var total float64
		for _, x := range w {
			total += x
		}
		if total <= 0 {
			// Remaining mass exhausted; fill from unchosen indices.
			for i, x := range w {
				if x >= 0 && len(out) < n {
					taken := false
					for _, o := range out {
						if o == i {
							taken = true
							break
						}
					}
					if !taken {
						out = append(out, i)
					}
				}
			}
			break
		}
		r := rng.Float64() * total
		for i, x := range w {
			r -= x
			if r <= 0 {
				out = append(out, i)
				w[i] = 0
				break
			}
		}
	}
	return out
}

// gammaDraw samples Gamma(shape, 1) with the Marsaglia-Tsang method.
func gammaDraw(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost and correct (Gamma(a) = Gamma(a+1) * U^(1/a)).
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		return gammaDraw(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// SplitTrainTest partitions docs into train/test per user with the given
// training fraction, mirroring the demo's "20 percent of the documents with
// tags are used for training" protocol. The split is deterministic for a
// seed and stratified by user so every peer holds some labeled data.
func SplitTrainTest(docs []Document, trainFrac float64, seed int64) (train, test []Document) {
	rng := rand.New(rand.NewSource(seed))
	byUser := make(map[int][]Document)
	var users []int
	for _, d := range docs {
		if _, ok := byUser[d.User]; !ok {
			users = append(users, d.User)
		}
		byUser[d.User] = append(byUser[d.User], d)
	}
	// Map iteration order is random; users slice preserves encounter order
	// for determinism.
	for _, u := range users {
		ds := byUser[u]
		perm := rng.Perm(len(ds))
		nTrain := int(trainFrac * float64(len(ds)))
		if nTrain < 1 {
			nTrain = 1
		}
		if nTrain >= len(ds) {
			nTrain = len(ds) - 1
		}
		for i, pi := range perm {
			if i < nTrain {
				train = append(train, ds[pi])
			} else {
				test = append(test, ds[pi])
			}
		}
	}
	return train, test
}

// TagIndex returns tag -> position in the corpus tag universe.
func (c *Corpus) TagIndex() map[string]int {
	m := make(map[string]int, len(c.Tags))
	for i, t := range c.Tags {
		m[t] = i
	}
	return m
}

// ByUser groups documents by owning user id.
func ByUser(docs []Document) map[int][]Document {
	m := make(map[int][]Document)
	for _, d := range docs {
		m[d.User] = append(m[d.User], d)
	}
	return m
}
