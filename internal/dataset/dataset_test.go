package dataset

import (
	"math"
	"strings"
	"testing"
)

func small() Config {
	cfg := DefaultConfig()
	cfg.Users = 5
	cfg.DocsPerUserMin = 10
	cfg.DocsPerUserMax = 20
	cfg.NumTags = 8
	return cfg
}

func TestGenerateShape(t *testing.T) {
	c, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tags) != 8 {
		t.Fatalf("tags = %v", c.Tags)
	}
	if len(c.Docs) < 50 || len(c.Docs) > 100 {
		t.Fatalf("docs = %d, want 50..100", len(c.Docs))
	}
	tagIdx := c.TagIndex()
	for _, d := range c.Docs {
		if len(d.Tags) < 1 || len(d.Tags) > 4 {
			t.Errorf("doc %d has %d tags", d.ID, len(d.Tags))
		}
		seen := map[string]bool{}
		for _, tag := range d.Tags {
			if _, ok := tagIdx[tag]; !ok {
				t.Errorf("doc %d has unknown tag %q", d.ID, tag)
			}
			if seen[tag] {
				t.Errorf("doc %d has duplicate tag %q", d.ID, tag)
			}
			seen[tag] = true
		}
		words := strings.Fields(d.Text)
		if len(words) < 40 || len(words) > 150 {
			t.Errorf("doc %d length %d outside [40,150]", d.ID, len(words))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Docs) != len(b.Docs) {
		t.Fatal("different corpus sizes")
	}
	for i := range a.Docs {
		if a.Docs[i].Text != b.Docs[i].Text {
			t.Fatal("same seed, different text")
		}
	}
	cfg := small()
	cfg.Seed = 99
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Docs[0].Text == a.Docs[0].Text {
		t.Error("different seeds produced identical first doc (unlikely)")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.NumTags = 1 },
		func(c *Config) { c.DocsPerUserMin = 0 },
		func(c *Config) { c.DocsPerUserMax = 1 },
		func(c *Config) { c.TagsPerDocMin = 0 },
		func(c *Config) { c.DocLenMin = 0 },
		func(c *Config) { c.NoiseRatio = 1.5 },
	}
	for i, mod := range bad {
		cfg := small()
		mod(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestZipfSkewsTagPopularity(t *testing.T) {
	cfg := small()
	cfg.Users = 20
	cfg.TagZipf = 1.2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range c.Docs {
		for _, tag := range d.Tags {
			counts[tag]++
		}
	}
	// The most popular tag (index 0) should beat the least popular.
	if counts[c.Tags[0]] <= counts[c.Tags[len(c.Tags)-1]] {
		t.Errorf("zipf failed: top=%d bottom=%d", counts[c.Tags[0]], counts[c.Tags[len(c.Tags)-1]])
	}
}

func TestUserBiasConcentratesTags(t *testing.T) {
	focused := small()
	focused.Users = 10
	focused.UserBias = 0.05
	focused.TagZipf = 0
	cf, err := Generate(focused)
	if err != nil {
		t.Fatal(err)
	}
	uniform := small()
	uniform.Users = 10
	uniform.UserBias = 100
	uniform.TagZipf = 0
	cu, err := Generate(uniform)
	if err != nil {
		t.Fatal(err)
	}
	// Average per-user tag entropy should be lower for focused users.
	entropy := func(c *Corpus) float64 {
		users := ByUser(c.Docs)
		var total float64
		for _, docs := range users {
			counts := map[string]float64{}
			var n float64
			for _, d := range docs {
				for _, tag := range d.Tags {
					counts[tag]++
					n++
				}
			}
			var h float64
			for _, ct := range counts {
				p := ct / n
				h -= p * math.Log2(p)
			}
			total += h
		}
		return total / float64(len(users))
	}
	if ef, eu := entropy(cf), entropy(cu); ef >= eu {
		t.Errorf("focused entropy %v >= uniform entropy %v", ef, eu)
	}
}

func TestSplitTrainTestStratified(t *testing.T) {
	c, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	train, test := SplitTrainTest(c.Docs, 0.2, 7)
	if len(train)+len(test) != len(c.Docs) {
		t.Fatalf("split lost documents: %d + %d != %d", len(train), len(test), len(c.Docs))
	}
	frac := float64(len(train)) / float64(len(c.Docs))
	if frac < 0.1 || frac > 0.3 {
		t.Errorf("train fraction = %v, want ~0.2", frac)
	}
	// Every user appears in the training set.
	users := map[int]bool{}
	for _, d := range train {
		users[d.User] = true
	}
	for u := range ByUser(c.Docs) {
		if !users[u] {
			t.Errorf("user %d has no training docs", u)
		}
	}
	// No document in both.
	ids := map[int]bool{}
	for _, d := range train {
		ids[d.ID] = true
	}
	for _, d := range test {
		if ids[d.ID] {
			t.Errorf("doc %d in both splits", d.ID)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	c, _ := Generate(small())
	a1, _ := SplitTrainTest(c.Docs, 0.2, 5)
	a2, _ := SplitTrainTest(c.Docs, 0.2, 5)
	if len(a1) != len(a2) {
		t.Fatal("split size differs")
	}
	for i := range a1 {
		if a1[i].ID != a2[i].ID {
			t.Fatal("split order differs for same seed")
		}
	}
}

func TestTopicWordsSeparateTags(t *testing.T) {
	// Documents of different single tags should share few topical words.
	cfg := small()
	cfg.TagsPerDocMin, cfg.TagsPerDocMax = 1, 1
	cfg.NoiseRatio = 0
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wordsOf := func(tag string) map[string]bool {
		m := map[string]bool{}
		for _, d := range c.Docs {
			if d.Tags[0] == tag {
				for _, w := range strings.Fields(d.Text) {
					m[w] = true
				}
			}
		}
		return m
	}
	w0, w1 := wordsOf(c.Tags[0]), wordsOf(c.Tags[1])
	for w := range w0 {
		if w1[w] {
			t.Fatalf("word %q appears in two pure single-tag topics", w)
		}
	}
}
