package doctagger_test

import (
	"context"
	"fmt"
	"log"

	doctagger "repro"
)

// ExampleServer builds a two-shard serving pool over identically trained
// swarms and tags documents from concurrent-safe calls. In a real service
// many goroutines call Tag at once and the dispatcher batches them; a
// single call works the same way, flushing on MaxDelay.
func ExampleServer() {
	build := func(shard int) (*doctagger.Tagger, error) {
		tg, err := doctagger.New(doctagger.Config{Peers: 4, Seed: 7})
		if err != nil {
			return nil, err
		}
		bootstrap := []struct {
			peer int
			text string
			tag  string
		}{
			{0, "guitar melody chord song album track", "music"},
			{1, "piano concert symphony orchestra melody", "music"},
			{2, "flight hotel passport beach island", "travel"},
			{3, "train station luggage itinerary map", "travel"},
			{0, "vinyl album drum bass rhythm tune", "music"},
			{1, "museum city tour visa border", "travel"},
		}
		for _, d := range bootstrap {
			if err := tg.AddDocument(d.peer, d.text, d.tag); err != nil {
				return nil, err
			}
		}
		return tg, tg.Train()
	}

	srv, err := doctagger.NewReplicatedServer(2, doctagger.ServerConfig{}, build)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	tags, err := srv.Tag(context.Background(), "a new album with a guitar melody")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tags)
	// Output: [music]
}
