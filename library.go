package doctagger

import (
	"time"

	"repro/internal/tagstore"
)

// Library is the tagged-document library of the demo UI: persistent tag
// metadata, tag search/filtering ("Library" panel) and the tag cloud view
// ("Tag Cloud" panel, Fig. 4).
type Library struct {
	store *tagstore.Store
}

// LibraryEntry is one document's metadata.
type LibraryEntry struct {
	Path    string
	Tags    []string
	Auto    map[string]bool // provenance: true if assigned by AutoTag
	Updated time.Time
}

// TagFrequency pairs a tag with its library document count.
type TagFrequency struct {
	Tag   string
	Count int
}

// CloudView is the co-occurrence tag cloud: frequencies, edges, concept
// clusters and bridging tags.
type CloudView struct {
	Tags     []TagFrequency
	Edges    []CloudEdge
	Clusters [][]string
	Bridges  []string
	rendered string
}

// CloudEdge connects two tags that co-occur in documents.
type CloudEdge struct {
	A, B   string
	Weight int
}

// OpenLibrary loads (or creates) a library persisted at path.
func OpenLibrary(path string) (*Library, error) {
	s, err := tagstore.Open(path)
	if err != nil {
		return nil, err
	}
	return &Library{store: s}, nil
}

// NewMemoryLibrary returns an unpersisted library.
func NewMemoryLibrary() *Library { return &Library{store: tagstore.NewMemory()} }

// Save persists the library (a no-op for memory libraries).
func (l *Library) Save() error { return l.store.Save() }

// SetTags replaces a document's tags; auto marks them as auto-assigned.
func (l *Library) SetTags(path string, tags []string, auto bool) {
	l.store.SetTags(path, tags, auto)
}

// AddTags merges tags into a document's entry.
func (l *Library) AddTags(path string, tags []string, auto bool) {
	l.store.AddTags(path, tags, auto)
}

// RemoveTag deletes one tag from a document (the refinement action).
func (l *Library) RemoveTag(path, tag string) error { return l.store.RemoveTag(path, tag) }

// Get returns a document's entry.
func (l *Library) Get(path string) (*LibraryEntry, error) {
	e, err := l.store.Get(path)
	if err != nil {
		return nil, err
	}
	return convertEntry(e), nil
}

// Delete removes a document from the library.
func (l *Library) Delete(path string) { l.store.Delete(path) }

// Len reports the number of documents in the library.
func (l *Library) Len() int { return l.store.Len() }

// Search returns entries matching the query terms: plain terms must all be
// present, "-term" must be absent. An empty query lists everything.
func (l *Library) Search(query ...string) []*LibraryEntry {
	es := l.store.Search(query)
	out := make([]*LibraryEntry, len(es))
	for i, e := range es {
		out[i] = convertEntry(e)
	}
	return out
}

// TagCounts returns every tag with its frequency, most frequent first.
func (l *Library) TagCounts() []TagFrequency {
	cs := l.store.TagCounts()
	out := make([]TagFrequency, len(cs))
	for i, c := range cs {
		out[i] = TagFrequency{Tag: c.Tag, Count: c.Count}
	}
	return out
}

// Cloud builds the tag cloud with the given minimum co-occurrence support
// for clustering (<=0 means 1).
func (l *Library) Cloud(minSupport int) *CloudView {
	c := l.store.BuildCloud(minSupport)
	v := &CloudView{
		Clusters: c.Clusters,
		Bridges:  c.Bridges,
		rendered: c.Render(0),
	}
	for _, tc := range c.Tags {
		v.Tags = append(v.Tags, TagFrequency{Tag: tc.Tag, Count: tc.Count})
	}
	for _, e := range c.Edges {
		v.Edges = append(v.Edges, CloudEdge{A: e.A, B: e.B, Weight: e.Weight})
	}
	return v
}

// String renders the cloud as terminal text.
func (v *CloudView) String() string { return v.rendered }

func convertEntry(e *tagstore.Entry) *LibraryEntry {
	out := &LibraryEntry{
		Path:    e.Path,
		Tags:    append([]string(nil), e.Tags...),
		Updated: e.Updated,
		Auto:    map[string]bool{},
	}
	for k, v := range e.Auto {
		out.Auto[k] = v
	}
	return out
}
