package doctagger

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/serving"
)

// ServerConfig tunes the concurrent serving front-end. The zero value
// batches up to 32 documents, waits at most 2ms for a batch to fill, and
// bounds the queue at 8*MaxBatch.
type ServerConfig struct {
	// MaxBatch flushes a batch at this many coalesced requests;
	// default 32.
	MaxBatch int
	// MaxDelay flushes a batch this long after its first request even if
	// it is smaller than MaxBatch; default 2ms.
	MaxDelay time.Duration
	// MaxQueue bounds the submission queue — backpressure instead of
	// unbounded memory; default 8*MaxBatch.
	MaxQueue int
	// FailFast rejects submissions with ErrOverloaded when the queue is
	// full instead of blocking callers.
	FailFast bool
}

// Serving errors, re-exported so callers need not import internal
// packages.
var (
	// ErrServerClosed is returned by Server.Tag after Close began.
	ErrServerClosed = serving.ErrClosed
	// ErrOverloaded is returned in fail-fast mode when the queue is full.
	ErrOverloaded = serving.ErrOverloaded
)

// BatchBucket is one bin of the batch-size histogram: Count batches had a
// size <= Le (and above the previous bucket's bound); Le 0 means
// unbounded.
type BatchBucket struct {
	Le    int
	Count int64
}

// ServerStats snapshots a Server's counters: request/batch accounting from
// the dispatcher plus the simulated swarms' aggregate traffic.
type ServerStats struct {
	// Shards is the tagger pool size.
	Shards int
	// Requests counts accepted submissions; Served counts completed ones
	// (failures included); Errors counts requests answered with an error;
	// Rejected counts fail-fast rejections.
	Requests, Served, Errors, Rejected int64
	// Batches counts AutoTagBatch invocations, BatchedDocs sums their
	// sizes; MeanBatchSize is their ratio and MaxBatchSeen the largest
	// batch dispatched.
	Batches, BatchedDocs int64
	MeanBatchSize        float64
	MaxBatchSeen         int
	// BatchSizeHist bins batch sizes into power-of-two buckets.
	BatchSizeHist []BatchBucket
	// QueueWait* aggregate time spent between submission and the start of
	// the batch's engine call.
	QueueWaitTotal, QueueWaitMax, MeanQueueWait time.Duration
	// Network aggregates simulated traffic across every shard's swarm.
	Network NetworkStats
}

// Server is the concurrent serving front-end over a pool of trained
// Taggers: many goroutines submit single documents, a micro-batching
// dispatcher coalesces them into AutoTagBatch calls fanned across the pool.
// A Tagger alone is not safe for concurrent use; a Server is — each shard
// is driven by exactly one goroutine.
//
// Shards answer interchangeably, so they must be identically trained (same
// Config including Seed, same documents). Identically trained shards give
// byte-identical answers — queries never feed back into the models, and
// the term-frequency features of a document do not depend on what was
// vectorized before it — which is what makes the pool transparent: results
// equal serial single-document AutoTag calls on any one shard.
type Server struct {
	inner   *serving.Server
	taggers []*Tagger
}

// NewServer builds a Server over already-trained taggers, one shard per
// tagger. The taggers must be distinct instances (the Server assumes
// exclusive ownership of each) and should be identically trained; see the
// Server doc. At least one tagger is required.
func NewServer(cfg ServerConfig, taggers ...*Tagger) (*Server, error) {
	if len(taggers) == 0 {
		return nil, errors.New("doctagger: NewServer needs at least one tagger")
	}
	engines := make([]serving.Engine, len(taggers))
	seen := make(map[*Tagger]bool, len(taggers))
	for i, tg := range taggers {
		if tg == nil {
			return nil, fmt.Errorf("doctagger: shard %d is nil", i)
		}
		if seen[tg] {
			return nil, fmt.Errorf("doctagger: shard %d reuses another shard's Tagger", i)
		}
		seen[tg] = true
		if !tg.trained {
			return nil, fmt.Errorf("doctagger: shard %d is not trained", i)
		}
		engines[i] = tg
	}
	inner, err := serving.New(serving.Config{
		MaxBatch: cfg.MaxBatch,
		MaxDelay: cfg.MaxDelay,
		MaxQueue: cfg.MaxQueue,
		FailFast: cfg.FailFast,
	}, engines...)
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner, taggers: taggers}, nil
}

// NewReplicatedServer builds shards identical taggers with build (called
// with the shard index) and serves them as one pool. build must be
// deterministic — same Config, same Seed, same training documents for
// every shard — or the shards' answers will depend on which one handled a
// batch.
func NewReplicatedServer(shards int, cfg ServerConfig, build func(shard int) (*Tagger, error)) (*Server, error) {
	if shards < 1 {
		return nil, fmt.Errorf("doctagger: %d shards < 1", shards)
	}
	taggers := make([]*Tagger, shards)
	for i := range taggers {
		tg, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("doctagger: building shard %d: %w", i, err)
		}
		taggers[i] = tg
	}
	return NewServer(cfg, taggers...)
}

// Tag submits one document and blocks until the swarm answers, ctx is
// cancelled, or — in fail-fast mode — the queue is full. Safe for
// arbitrary concurrent use.
func (s *Server) Tag(ctx context.Context, text string) ([]string, error) {
	return s.inner.Tag(ctx, text)
}

// Stats snapshots the serving counters and the aggregate simulated traffic
// of every shard's swarm. Safe to call while the server is running.
func (s *Server) Stats() ServerStats {
	st := s.inner.Stats()
	out := ServerStats{
		Shards:         st.Shards,
		Requests:       st.Requests,
		Served:         st.Served,
		Errors:         st.Errors,
		Rejected:       st.Rejected,
		Batches:        st.Batches,
		BatchedDocs:    st.BatchedDocs,
		MeanBatchSize:  st.MeanBatchSize,
		MaxBatchSeen:   st.MaxBatchSeen,
		QueueWaitTotal: st.QueueWaitTotal,
		QueueWaitMax:   st.QueueWaitMax,
		MeanQueueWait:  st.MeanQueueWait,
	}
	out.BatchSizeHist = make([]BatchBucket, len(st.BatchSizeHist))
	for i, b := range st.BatchSizeHist {
		out.BatchSizeHist[i] = BatchBucket{Le: b.Le, Count: b.Count}
	}
	for _, tg := range s.taggers {
		ns := tg.Stats()
		out.Network.Messages += ns.Messages
		out.Network.Bytes += ns.Bytes
	}
	return out
}

// Close drains and shuts down: new submissions fail with ErrServerClosed,
// every accepted request is answered first. Idempotent; concurrent calls
// wait for the first to finish.
func (s *Server) Close() { s.inner.Close() }
