package doctagger

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/serving"
)

// ServerConfig tunes the concurrent serving front-end. The zero value
// batches up to 32 documents, waits at most 2ms for a batch to fill,
// bounds the queue at 8*MaxBatch, and disables the result cache.
type ServerConfig struct {
	// MaxBatch flushes a batch at this many coalesced requests;
	// default 32.
	MaxBatch int
	// MaxDelay flushes a batch this long after its first request even if
	// it is smaller than MaxBatch; default 2ms.
	MaxDelay time.Duration
	// MaxQueue bounds the submission queue — backpressure instead of
	// unbounded memory; default 8*MaxBatch.
	MaxQueue int
	// FailFast rejects submissions with ErrOverloaded when the queue is
	// full instead of blocking callers.
	FailFast bool
	// CacheSize bounds the request-level result cache; 0 disables it.
	// Repeated queries for identical text are answered from a sharded LRU
	// without re-entering the swarm — sound because queries never feed
	// back into the models. The cache flushes whenever Swap or Refresh
	// installs a new tagger generation, so a cached answer never outlives
	// the models that produced it.
	CacheSize int
}

// Engine is the batch classification back-end a Server shards over: one
// tag list per input text in input order; rows the engine cannot answer
// are nil, and the returned error wraps the underlying cause of the first
// failed row. Engines need not be safe for concurrent use — the Server
// drives each shard engine on exactly one goroutine. A *Tagger is an
// Engine; NewEngineServer and SwapEngines accept any other implementation
// (for example an ensemble over gossiped model sets), which is how a
// distributed cluster installs model generations that did not come from a
// local Tagger.
type Engine interface {
	AutoTagBatch(texts []string) ([][]string, error)
}

// Serving errors, re-exported so callers need not import internal
// packages.
var (
	// ErrServerClosed is returned by Server.Tag after Close began.
	ErrServerClosed = serving.ErrClosed
	// ErrOverloaded is returned in fail-fast mode when the queue is full.
	ErrOverloaded = serving.ErrOverloaded
)

// BatchBucket is one bin of the batch-size histogram: Count batches had a
// size <= Le (and above the previous bucket's bound); Le 0 means
// unbounded.
type BatchBucket struct {
	Le    int
	Count int64
}

// ServerStats snapshots a Server's counters: request/batch accounting from
// the dispatcher, cache performance, the model generation, plus the
// simulated swarms' aggregate traffic.
type ServerStats struct {
	// Shards is the tagger pool size of the current generation.
	Shards int
	// Generation counts tagger pools installed so far: 1 at NewServer,
	// +1 per successful Swap/Refresh.
	Generation int64
	// Requests counts accepted submissions; Served counts completed ones
	// (failures included); Errors counts requests answered with an error;
	// Rejected counts fail-fast rejections; Deduped counts TagBatch rows
	// answered by intra-batch deduplication; Coalesced counts Tag calls
	// answered by single-flight dedup of concurrent identical misses
	// (rows issued = Served + CacheHits + Coalesced + Deduped).
	Requests, Served, Errors, Rejected, Deduped, Coalesced int64
	// Issued is the total number of answer rows handed to callers, however
	// produced: Issued = Served + CacheHits + Coalesced + Deduped, the
	// serving accounting identity. Clients that count the rows they asked
	// for can check it against any node's snapshot.
	Issued int64
	// Batches counts AutoTagBatch invocations, BatchedDocs sums their
	// sizes; MeanBatchSize is their ratio and MaxBatchSeen the largest
	// batch dispatched.
	Batches, BatchedDocs int64
	MeanBatchSize        float64
	MaxBatchSeen         int
	// BatchSizeHist bins batch sizes into power-of-two buckets.
	BatchSizeHist []BatchBucket
	// QueueWait* aggregate time spent between submission and the start of
	// the batch's engine call.
	QueueWaitTotal, QueueWaitMax, MeanQueueWait time.Duration
	// Cache counters; all zero when ServerConfig.CacheSize is 0.
	CacheHits, CacheMisses, CacheEvictions int64
	CacheEntries, CacheCapacity            int
	// Network aggregates the simulated traffic every shard's swarm
	// generated while serving under this Server, retired generations
	// included (traffic from before a generation's install — training,
	// offline refinement — is not counted; see (*Tagger).Stats for a
	// swarm's own cumulative view).
	Network NetworkStats
}

// Server is the concurrent serving front-end over a pool of trained
// Taggers: many goroutines submit single documents, a micro-batching
// dispatcher coalesces them into AutoTagBatch calls fanned across the pool.
// A Tagger alone is not safe for concurrent use; a Server is — each shard
// is driven by exactly one goroutine.
//
// Shards answer interchangeably, so they must be identically trained (same
// Config including Seed, same documents). Identically trained shards give
// byte-identical answers — queries never feed back into the models, and
// the term-frequency features of a document do not depend on what was
// vectorized before it — which is what makes the pool transparent: results
// equal serial single-document AutoTag calls on any one shard. The same
// property is what makes the optional result cache (ServerConfig.CacheSize)
// sound: within one generation, identical text means identical tags.
//
// The pool is not frozen at build time: Swap and Refresh install a new
// tagger generation under live traffic — this is how (*Tagger).Refine
// reaches live serving. Refine a retired (or freshly built) generation
// offline, then swap it in; in-flight requests drain on the old models and
// the cache flushes.
type Server struct {
	inner *serving.Server

	refreshMu sync.Mutex // serializes Swap/SwapEngines/Refresh

	mu sync.Mutex // guards engines, taggers, baselines and retired
	// engines is the currently serving generation, whatever built it; used
	// to refuse installing an engine that is already serving. taggers is
	// non-nil only when the generation came from NewServer/Swap/Refresh —
	// generic engine generations (NewEngineServer, SwapEngines) have no
	// swarm traffic to aggregate, so Stats' Network covers tagger
	// generations only.
	engines []Engine
	taggers []*Tagger
	// baselines[i] is taggers[i]'s cumulative swarm traffic at the moment
	// it was installed; Stats counts only the excess, so Network is the
	// traffic generated while serving under this Server — uniformly
	// across generations, whether a tagger arrived fresh or is a
	// swapped-back retiree (whose earlier service is in retired already).
	// retired accumulates the while-installed traffic of swapped-out
	// generations, keeping Network cumulative across refreshes without
	// retaining references to dead generations.
	baselines []NetworkStats
	retired   NetworkStats
}

// NewServer builds a Server over already-trained taggers, one shard per
// tagger. The taggers must be distinct instances (the Server assumes
// exclusive ownership of each) and should be identically trained; see the
// Server doc. At least one tagger is required.
func NewServer(cfg ServerConfig, taggers ...*Tagger) (*Server, error) {
	engines, err := poolEngines(taggers)
	if err != nil {
		return nil, err
	}
	inner, err := serving.New(servingConfig(cfg), engines...)
	if err != nil {
		return nil, err
	}
	return &Server{
		inner:     inner,
		engines:   taggerEngines(taggers),
		taggers:   append([]*Tagger(nil), taggers...),
		baselines: installBaselines(taggers),
	}, nil
}

// NewEngineServer builds a Server over arbitrary batch engines, one shard
// per engine — the generic face of NewServer for generations that did not
// come from local Taggers (a realnet ensemble over gossiped model sets,
// say). The engines must be distinct instances and must answer
// interchangeably; the Server assumes exclusive ownership of each. The
// serving semantics (batching, caching, dedup, Swap draining) are exactly
// those of a tagger-backed Server; only the Network traffic aggregation is
// absent, since generic engines have no simulated swarm behind them.
func NewEngineServer(cfg ServerConfig, engines ...Engine) (*Server, error) {
	adapted, err := genericEngines(engines)
	if err != nil {
		return nil, err
	}
	inner, err := serving.New(servingConfig(cfg), adapted...)
	if err != nil {
		return nil, err
	}
	return &Server{
		inner:   inner,
		engines: append([]Engine(nil), engines...),
	}, nil
}

func servingConfig(cfg ServerConfig) serving.Config {
	return serving.Config{
		MaxBatch:  cfg.MaxBatch,
		MaxDelay:  cfg.MaxDelay,
		MaxQueue:  cfg.MaxQueue,
		FailFast:  cfg.FailFast,
		CacheSize: cfg.CacheSize,
	}
}

// taggerEngines views a tagger pool as its engine slice.
func taggerEngines(taggers []*Tagger) []Engine {
	engines := make([]Engine, len(taggers))
	for i, tg := range taggers {
		engines[i] = tg
	}
	return engines
}

// genericEngines validates an engine generation — non-empty, non-nil,
// distinct — and adapts it to the serving layer.
func genericEngines(engines []Engine) ([]serving.Engine, error) {
	if len(engines) == 0 {
		return nil, errors.New("doctagger: a server pool needs at least one engine")
	}
	adapted := make([]serving.Engine, len(engines))
	seen := make(map[Engine]bool, len(engines))
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("doctagger: shard %d is nil", i)
		}
		if seen[e] {
			return nil, fmt.Errorf("doctagger: shard %d reuses another shard's engine", i)
		}
		seen[e] = true
		adapted[i] = e
	}
	return adapted, nil
}

// installBaselines snapshots each tagger's cumulative traffic at install
// time; only traffic beyond it counts toward the server's Network stats.
func installBaselines(taggers []*Tagger) []NetworkStats {
	baselines := make([]NetworkStats, len(taggers))
	for i, tg := range taggers {
		baselines[i] = tg.Stats()
	}
	return baselines
}

// poolEngines validates a tagger generation — non-empty, non-nil,
// distinct, trained — and adapts it to the serving layer.
func poolEngines(taggers []*Tagger) ([]serving.Engine, error) {
	if len(taggers) == 0 {
		return nil, errors.New("doctagger: a server pool needs at least one tagger")
	}
	engines := make([]serving.Engine, len(taggers))
	seen := make(map[*Tagger]bool, len(taggers))
	for i, tg := range taggers {
		if tg == nil {
			return nil, fmt.Errorf("doctagger: shard %d is nil", i)
		}
		if seen[tg] {
			return nil, fmt.Errorf("doctagger: shard %d reuses another shard's Tagger", i)
		}
		seen[tg] = true
		if !tg.trained {
			return nil, fmt.Errorf("doctagger: shard %d is not trained", i)
		}
		engines[i] = tg
	}
	return engines, nil
}

// NewReplicatedServer builds shards identical taggers with build (called
// with the shard index) and serves them as one pool. build must be
// deterministic — same Config, same Seed, same training documents for
// every shard — or the shards' answers will depend on which one handled a
// batch.
func NewReplicatedServer(shards int, cfg ServerConfig, build func(shard int) (*Tagger, error)) (*Server, error) {
	if shards < 1 {
		return nil, fmt.Errorf("doctagger: %d shards < 1", shards)
	}
	taggers, err := buildGeneration(shards, build)
	if err != nil {
		return nil, err
	}
	return NewServer(cfg, taggers...)
}

// buildGeneration builds one tagger per shard with build, wrapping any
// failure with its shard index.
func buildGeneration(shards int, build func(shard int) (*Tagger, error)) ([]*Tagger, error) {
	taggers := make([]*Tagger, shards)
	for i := range taggers {
		tg, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("doctagger: building shard %d: %w", i, err)
		}
		taggers[i] = tg
	}
	return taggers, nil
}

// Tag submits one document and blocks until the swarm answers, ctx is
// cancelled, or — in fail-fast mode — the queue is full. Safe for
// arbitrary concurrent use. An already-cancelled ctx never enqueues work.
func (s *Server) Tag(ctx context.Context, text string) ([]string, error) {
	return s.inner.Tag(ctx, text)
}

// TagBatch submits many documents at once: they enter the dispatcher as
// pre-formed batches (chunked at MaxBatch) instead of coalescing through
// the per-request queue, so a bulk caller pays no MaxDelay. Answers are
// pinned identical to per-document Tag calls — one tag list per input in
// input order, unanswerable rows nil, the first failure reported as the
// error alongside the remaining results (the AutoTagBatch contract).
func (s *Server) TagBatch(ctx context.Context, texts []string) ([][]string, error) {
	return s.inner.TagBatch(ctx, texts)
}

// Swap installs taggers as the new serving generation under live traffic
// and returns the retired generation, fully drained and safe to reuse —
// refine it offline and swap it back in later. In-flight and queued
// requests are never dropped: they are answered by whichever generation
// their batch dispatches to, and the result cache flushes so no cached
// answer outlives its models. The new taggers are validated like
// NewServer's and must not still be serving (a tagger can be in at most
// one live generation, since each shard is driven by its own goroutine).
func (s *Server) Swap(taggers ...*Tagger) ([]*Tagger, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	//dmtvet:allow lockdiscipline refreshMu serializes generation changes; its critical section is the drain itself, and request paths never take it
	return s.swapLocked(taggers)
}

// swapLocked is Swap's body; the caller holds refreshMu.
func (s *Server) swapLocked(taggers []*Tagger) ([]*Tagger, error) {
	engines, err := poolEngines(taggers)
	if err != nil {
		return nil, err
	}
	if err := s.checkNotServing(taggerEngines(taggers)); err != nil {
		return nil, err
	}
	// Snapshot the incoming generation's baselines before it can serve a
	// single request (the dispatcher switches inside inner.Swap, which
	// also waits out the old generation's drain — traffic served during
	// that window must not disappear into the baseline).
	newBaselines := installBaselines(taggers)
	if err := s.inner.Swap(engines...); err != nil {
		return nil, err
	}
	s.mu.Lock()
	old := s.taggers
	s.retireLocked()
	s.engines = taggerEngines(taggers)
	s.taggers = append([]*Tagger(nil), taggers...)
	s.baselines = newBaselines
	s.mu.Unlock()
	return old, nil
}

// SwapEngines installs arbitrary batch engines as the new serving
// generation under live traffic, with the same drain/flush guarantees as
// Swap: no accepted request is dropped and no cached answer outlives the
// generation that produced it. This is the install path for generations
// that did not come from local Taggers — a cluster node receiving a
// gossiped model generation wraps it per shard and swaps it in here. The
// engines are validated like NewEngineServer's and must not already be
// serving. A retiring tagger generation's swarm traffic stays in the
// Network stats; the retired taggers themselves are the caller's to keep.
func (s *Server) SwapEngines(engines ...Engine) error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	adapted, err := genericEngines(engines)
	if err != nil {
		return err
	}
	if err := s.checkNotServing(engines); err != nil {
		return err
	}
	//dmtvet:allow lockdiscipline refreshMu serializes generation changes; its critical section is the drain itself, and request paths never take it
	if err := s.inner.Swap(adapted...); err != nil {
		return err
	}
	s.mu.Lock()
	s.retireLocked()
	s.engines = append([]Engine(nil), engines...)
	s.taggers, s.baselines = nil, nil
	s.mu.Unlock()
	return nil
}

// checkNotServing refuses engines already present in the live generation
// (each shard is driven by its own goroutine; an engine can serve in at
// most one generation at a time).
func (s *Server) checkNotServing(engines []Engine) error {
	s.mu.Lock()
	current := make(map[Engine]bool, len(s.engines))
	for _, e := range s.engines {
		current[e] = true
	}
	s.mu.Unlock()
	for i, e := range engines {
		if current[e] {
			return fmt.Errorf("doctagger: shard %d is still serving in the current generation", i)
		}
	}
	return nil
}

// retireLocked folds the outgoing tagger generation's while-installed
// swarm traffic into retired; a no-op for generic engine generations. The
// caller holds s.mu.
func (s *Server) retireLocked() {
	for i, tg := range s.taggers {
		ns := tg.Stats()
		s.retired.Messages += ns.Messages - s.baselines[i].Messages
		s.retired.Bytes += ns.Bytes - s.baselines[i].Bytes
	}
}

// Refresh rebuilds the pool with build (called with each shard index, like
// NewReplicatedServer) and swaps the new generation in under live traffic.
// This is the serving face of tag refinement: refinements applied to a
// fresh training round reach live queries here, without restarting the
// server or dropping a request. The retired taggers are discarded; use
// Swap directly to keep them. Concurrent Refresh calls serialize around
// the whole rebuild, not just the swap, so retrains never run
// concurrently; each queued caller still performs its own rebuild once
// the lock frees (back-to-back installs, not wasted parallel ones).
// Refresh reports the generation number it installed — read it from the
// return value, not a later Stats snapshot, which a queued refresh may
// already have advanced.
func (s *Server) Refresh(build func(shard int) (*Tagger, error)) (int64, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	s.mu.Lock()
	shards := len(s.taggers)
	s.mu.Unlock()
	if shards == 0 {
		return 0, errors.New("doctagger: current generation is not tagger-backed; use Swap or SwapEngines")
	}
	taggers, err := buildGeneration(shards, build)
	if err != nil {
		return 0, err
	}
	//dmtvet:allow lockdiscipline refreshMu serializes generation changes; its critical section is the drain itself, and request paths never take it
	if _, err := s.swapLocked(taggers); err != nil {
		return 0, err
	}
	// Stable while refreshMu is held: no other Swap/Refresh can advance
	// the generation underneath us.
	return s.inner.Stats().Generation, nil
}

// Stats snapshots the serving counters and the aggregate simulated
// traffic the shards' swarms generated while serving (retired generations
// included). Safe to call while the server is running.
func (s *Server) Stats() ServerStats {
	st := s.inner.Stats()
	out := ServerStats{
		Shards:         st.Shards,
		Generation:     st.Generation,
		Requests:       st.Requests,
		Served:         st.Served,
		Errors:         st.Errors,
		Rejected:       st.Rejected,
		Deduped:        st.Deduped,
		Coalesced:      st.Coalesced,
		Issued:         st.Issued,
		Batches:        st.Batches,
		BatchedDocs:    st.BatchedDocs,
		MeanBatchSize:  st.MeanBatchSize,
		MaxBatchSeen:   st.MaxBatchSeen,
		QueueWaitTotal: st.QueueWaitTotal,
		QueueWaitMax:   st.QueueWaitMax,
		MeanQueueWait:  st.MeanQueueWait,
		CacheHits:      st.CacheHits,
		CacheMisses:    st.CacheMisses,
		CacheEvictions: st.CacheEvictions,
		CacheEntries:   st.CacheEntries,
		CacheCapacity:  st.CacheCapacity,
	}
	out.BatchSizeHist = make([]BatchBucket, len(st.BatchSizeHist))
	for i, b := range st.BatchSizeHist {
		out.BatchSizeHist[i] = BatchBucket{Le: b.Le, Count: b.Count}
	}
	// Aggregate under the lock: a concurrent Swap retires taggers and
	// folds their traffic into retired, and the retirees' owner may
	// refine them immediately after — reading tg.Stats() on a stale
	// snapshot would attribute that offline traffic here. tg.Stats() is
	// a cheap counter read, so holding mu across the loop is fine.
	s.mu.Lock()
	out.Network = s.retired
	for i, tg := range s.taggers {
		ns := tg.Stats()
		out.Network.Messages += ns.Messages - s.baselines[i].Messages
		out.Network.Bytes += ns.Bytes - s.baselines[i].Bytes
	}
	s.mu.Unlock()
	return out
}

// Close drains and shuts down: new submissions fail with ErrServerClosed,
// every accepted request is answered first. Idempotent; concurrent calls
// wait for the first to finish.
func (s *Server) Close() { s.inner.Close() }
