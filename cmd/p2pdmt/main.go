// Command p2pdmt runs one configured P2P data-mining simulation and prints
// its report — the command-line face of the P2PDMT toolkit (Fig. 2 of the
// paper). It exposes the knobs the demo walks through: network size,
// protocol, churn model, train fraction, data-size skew and class skew.
//
// Examples:
//
//	p2pdmt -peers 64 -protocol cempar
//	p2pdmt -peers 128 -protocol pace -churn exp -mean-uptime 4m
//	p2pdmt -peers 32 -protocol centralized -size-zipf 1.0 -viz
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/p2pdmt"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("p2pdmt: ")
	var (
		peers     = flag.Int("peers", 32, "network size")
		protoName = flag.String("protocol", "cempar", "cempar | pace | centralized | local")
		trainFrac = flag.Float64("train-frac", 0.2, "labeled fraction (demo used 0.2)")
		evalDocs  = flag.Int("eval-docs", 100, "test documents to score (0 = all)")
		threshold = flag.Float64("threshold", 0.5, "tag confidence threshold")
		sizeZipf  = flag.Float64("size-zipf", 0, "Zipf skew of per-peer data sizes")
		classSort = flag.Bool("class-sort", false, "group same-tag documents on the same peers")
		churnKind = flag.String("churn", "none", "none | exp | pareto")
		meanUp    = flag.Duration("mean-uptime", 4*time.Minute, "mean session length under churn")
		meanDown  = flag.Duration("mean-downtime", time.Minute, "mean downtime under churn")
		dropRate  = flag.Float64("drop", 0, "random message loss probability")
		seed      = flag.Int64("seed", 42, "simulation seed")
		shards    = flag.Int("shards", 1, "simulator event-loop shards (results are identical at any value)")
		viz       = flag.Bool("viz", false, "print the node liveness map after the run")
		verbose   = flag.Bool("v", false, "log network activity")
	)
	flag.Parse()

	cfg := p2pdmt.Config{
		Peers:     *peers,
		Protocol:  p2pdmt.ProtocolKind(*protoName),
		TrainFrac: *trainFrac,
		EvalDocs:  *evalDocs,
		Threshold: *threshold,
		DropRate:  *dropRate,
		Seed:      *seed,
		Shards:    *shards,
		Distribution: p2pdmt.Distribution{
			SizeZipf:  *sizeZipf,
			ClassSort: *classSort,
		},
	}
	switch *churnKind {
	case "none":
	case "exp":
		cfg.Churn = simnet.ExponentialChurn{MeanUptime: *meanUp, MeanDowntime: *meanDown}
	case "pareto":
		cfg.Churn = simnet.ParetoChurn{MinUptime: *meanUp / 4, Alpha: 1.5, MeanDowntime: *meanDown}
	default:
		log.Fatalf("unknown churn model %q", *churnKind)
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	start := time.Now()
	res, err := p2pdmt.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol      %s\n", res.Protocol)
	fmt.Printf("peers         %d\n", res.Peers)
	fmt.Printf("queries       %d answered, %d failed, %d owners offline\n",
		res.TotalQueries-res.FailedQueries, res.FailedQueries, res.SkippedOffline)
	fmt.Printf("accuracy      %s\n", res.Eval)
	fmt.Printf("suggestion    P@1=%.4f one-error=%.4f\n", res.MeanP1, res.OneError)
	fmt.Printf("train cost    %s\n", res.TrainCost)
	fmt.Printf("query cost    %s\n", res.QueryCost)
	fmt.Printf("wall time     %s\n", time.Since(start).Round(time.Millisecond))
	if *viz {
		fmt.Printf("\n%s", res.LivenessMap)
	}
}
