// Command dmtvet runs the repo's custom static-analysis suite
// (internal/lint) over the module: the determinism and safety contracts
// from ROADMAP.md's "Standing contracts" section as compile-time checks.
//
// Usage:
//
//	go run ./cmd/dmtvet [-run detrand,maprange] [-list] [packages]
//
// Packages default to ./... resolved against the enclosing module root,
// so the command behaves identically from any directory in the repo — and
// identically in CI, where it is a required step next to go vet. dmtvet
// exits 1 when any diagnostic is reported, 2 on usage or load errors.
//
// Suppress a finding surgically with a comment on (or directly above) the
// offending line:
//
//	//dmtvet:allow <analyzer> <reason>
//
// The reason is mandatory; malformed waivers are themselves diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		listOnly = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	all := lint.Analyzers()
	if *listOnly {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "dmtvet: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmtvet:", err)
		os.Exit(2)
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmtvet:", err)
		os.Exit(2)
	}

	n, err := analysis.Run(root, patterns, analyzers, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmtvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "dmtvet: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}
