// Command dmtvet runs the repo's custom static-analysis suite
// (internal/lint) over the module: the determinism and safety contracts
// from ROADMAP.md's "Standing contracts" section as compile-time checks.
//
// Usage:
//
//	go run ./cmd/dmtvet [flags] [packages]
//
//	-run detrand,maprange   run a subset of analyzers (default: all)
//	-list                   list analyzers and exit
//	-json                   emit diagnostics as a JSON array (waived ones
//	                        included, marked) instead of text
//	-diff ref               only report diagnostics on lines changed
//	                        relative to the git ref (e.g. -diff origin/main)
//	-github                 also emit GitHub Actions ::error annotations
//	-nocache                disable the diagnostic cache
//
// Packages default to ./... resolved against the enclosing module root,
// so the command behaves identically from any directory in the repo — and
// identically in CI, where it is a required step next to go vet. dmtvet
// exits 1 when any unwaived diagnostic survives the filters, 2 on usage
// or load errors.
//
// Runs are cached: a run whose analyzer set, source files and dependency
// export data hash to a previously seen key replays its diagnostics
// without type-checking anything (the cache lives under the user cache
// directory; -nocache opts out, and any cache error silently degrades to
// a full run).
//
// Suppress a finding surgically with a comment on (or directly above) the
// offending line:
//
//	//dmtvet:allow <analyzer> <reason>
//
// The reason is mandatory; malformed waivers are themselves diagnostics,
// and so are waivers that no longer suppress anything (waiverstale).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		listOnly = flag.Bool("list", false, "list analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit diagnostics as JSON")
		diffRef  = flag.String("diff", "", "only report diagnostics on lines changed vs this git ref")
		github   = flag.Bool("github", false, "emit GitHub Actions ::error annotations")
		noCache  = flag.Bool("nocache", false, "disable the diagnostic cache")
	)
	flag.Parse()

	all := lint.Analyzers()
	if *listOnly {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "dmtvet: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmtvet:", err)
		os.Exit(2)
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmtvet:", err)
		os.Exit(2)
	}

	opts := analysis.Options{}
	if !*noCache {
		if base, err := os.UserCacheDir(); err == nil {
			opts.CacheDir = filepath.Join(base, "dmtvet")
		}
	}

	res, err := analysis.RunModule(root, patterns, analyzers, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmtvet:", err)
		os.Exit(2)
	}

	diags := res.Diags
	if *diffRef != "" {
		changed, err := changedLines(root, *diffRef)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmtvet:", err)
			os.Exit(2)
		}
		diags = filterChanged(root, diags, changed)
	}

	failing := 0
	for _, d := range diags {
		if !d.Waived {
			failing++
		}
	}

	switch {
	case *jsonOut:
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
			Waived   bool   `json:"waived"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: analysis.RelPath(root, d.File), Line: d.Line, Col: d.Col,
				Analyzer: d.Analyzer, Message: d.Message, Waived: d.Waived,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "dmtvet:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			if d.Waived {
				continue
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", analysis.RelPath(root, d.File), d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if *github {
		for _, d := range diags {
			if d.Waived {
				continue
			}
			// GitHub annotation properties use %0A/%0D/%25 escapes.
			msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(d.Message)
			fmt.Printf("::error file=%s,line=%d,col=%d,title=dmtvet %s::%s\n",
				analysis.RelPath(root, d.File), d.Line, d.Col, d.Analyzer, msg)
		}
	}

	if failing > 0 {
		fmt.Fprintf(os.Stderr, "dmtvet: %d diagnostic(s)\n", failing)
		os.Exit(1)
	}
}

// changedLines parses `git diff --unified=0 ref` and returns, per
// repo-relative file path, the set of line numbers added or modified
// relative to ref.
func changedLines(root, ref string) (map[string]map[int]bool, error) {
	cmd := exec.Command("git", "-C", root, "diff", "--unified=0", "--no-color", ref, "--", "*.go")
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("git diff %s: %v", ref, err)
	}
	changed := map[string]map[int]bool{}
	var cur string
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "+++ b/"):
			cur = strings.TrimPrefix(line, "+++ b/")
		case strings.HasPrefix(line, "+++ "):
			cur = "" // deleted file or /dev/null
		case strings.HasPrefix(line, "@@ ") && cur != "":
			// @@ -a[,b] +c[,d] @@ — c is the first new line, d the count.
			fields := strings.Fields(line)
			for _, f := range fields[1:] {
				if !strings.HasPrefix(f, "+") {
					continue
				}
				start, count := 1, 1
				spec := strings.TrimPrefix(f, "+")
				if i := strings.IndexByte(spec, ','); i >= 0 {
					count, _ = strconv.Atoi(spec[i+1:])
					spec = spec[:i]
				}
				start, _ = strconv.Atoi(spec)
				m := changed[cur]
				if m == nil {
					m = map[int]bool{}
					changed[cur] = m
				}
				for l := start; l < start+count; l++ {
					m[l] = true
				}
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("git diff %s: %v", ref, err)
	}
	return changed, nil
}

// filterChanged keeps only diagnostics landing on changed lines.
func filterChanged(root string, diags []analysis.ResultDiagnostic, changed map[string]map[int]bool) []analysis.ResultDiagnostic {
	var out []analysis.ResultDiagnostic
	for _, d := range diags {
		rel := filepath.ToSlash(analysis.RelPath(root, d.File))
		if changed[rel][d.Line] {
			out = append(out, d)
		}
	}
	return out
}
