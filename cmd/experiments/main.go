// Command experiments regenerates every experiment table of the
// reproduction (E1-E10 and F4; see DESIGN.md for the index) and prints them
// to stdout. With -out it also writes the tables as a markdown fragment,
// which is how the result sections of EXPERIMENTS.md were produced.
//
// Usage:
//
//	experiments [-quick] [-max-peers N] [-only E4] [-parallel N] [-shards K] [-seed S] [-out results.md]
//
// Sweeps fan their cells out over -parallel workers (default: all cores;
// 1 reproduces the old serial behavior) and render byte-identical tables
// at any worker count. -shards additionally parallelizes within each
// simulated network (conservative PDES; worthwhile for few, very large
// networks — tables stay byte-identical). -seed re-seeds the whole sweep,
// deriving an independent seed per cell; 0 keeps the committed
// EXPERIMENTS.md seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/p2pdmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	quick := flag.Bool("quick", false, "run the reduced CI-sized sweeps")
	maxPeers := flag.Int("max-peers", 0, "override the largest network size")
	only := flag.String("only", "", "run a single experiment (E1..E10, F4)")
	out := flag.String("out", "", "also write results as markdown to this file")
	parallel := flag.Int("parallel", 0, "worker count for sweep cells (0 = all cores, 1 = serial)")
	seedFlag := flag.Int64("seed", 0, "re-seed the sweep, deriving independent per-cell seeds (0 = committed seed)")
	shards := flag.Int("shards", 1, "event-loop shards inside each simulated network (tables are identical at any value)")
	flag.Parse()

	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	if *maxPeers > 0 {
		sc.MaxPeers = *maxPeers
	}
	sc.Parallel = *parallel
	sc.Seed = *seedFlag
	sc.Shards = *shards

	type entry struct {
		id  string
		run func() (*p2pdmt.Table, string, error)
	}
	wrap := func(f func(experiments.Scale) (*p2pdmt.Table, error)) func() (*p2pdmt.Table, string, error) {
		return func() (*p2pdmt.Table, string, error) {
			tbl, err := f(sc)
			return tbl, "", err
		}
	}
	all := []entry{
		{"E1", wrap(experiments.E1AccuracyVsPeers)},
		{"E2", wrap(experiments.E2CommunicationCost)},
		{"E3", wrap(experiments.E3TrainingFraction)},
		{"E4", wrap(experiments.E4Churn)},
		{"E5", wrap(experiments.E5SizeSkew)},
		{"E6", wrap(experiments.E6ClassSkew)},
		{"E7", wrap(experiments.E7Topology)},
		{"E8", wrap(experiments.E8PaceTopK)},
		{"E9", wrap(experiments.E9ConfidenceSlider)},
		{"E10", wrap(experiments.E10Refinement)},
		{"F4", func() (*p2pdmt.Table, string, error) { return experiments.F4TagCloud(sc) }},
		{"A1", wrap(experiments.A1CEMPaRAblations)},
		{"A2", wrap(experiments.A2Weighting)},
		{"A3", wrap(experiments.A3DropRate)},
		{"A4", wrap(experiments.A4Privacy)},
	}

	var md strings.Builder
	ran := 0
	for _, e := range all {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		start := time.Now()
		tbl, extra, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		ran++
		fmt.Printf("%s  (%s)\n", tbl, time.Since(start).Round(time.Millisecond))
		if extra != "" {
			fmt.Println(extra)
		}
		fmt.Fprintf(&md, "### %s\n\n```\n%s```\n\n", tbl.Title, tbl)
		if extra != "" {
			fmt.Fprintf(&md, "```\n%s```\n\n", extra)
		}
	}
	if ran == 0 {
		log.Fatalf("no experiment matches -only=%s", *only)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(md.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
}
