// Command simbench measures the sharded simulator's wall-clock scaling: it
// runs the same message-heavy token-passing workload at a series of shard
// counts, verifies every run produces the identical checksum and stats
// (the PDES determinism contract), and reports events/second plus the
// speedup over the serial run. With -json it writes the results as a
// machine-readable artifact — the simulator's entry in the repository's
// performance trajectory, next to BENCH_serving.json.
//
// Usage:
//
//	simbench [-peers 512] [-shards 1,2,4,8] [-ttl 40] [-work 64] [-json BENCH_simnet.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/simnet"
)

type run struct {
	Shards     int     `json:"shards"`
	Events     int     `json:"events"`
	Seconds    float64 `json:"seconds"`
	EventsPerS float64 `json:"events_per_s"`
	Speedup    float64 `json:"speedup_vs_serial"`
	Checksum   string  `json:"checksum"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("simbench: ")
	var (
		peers     = flag.Int("peers", 512, "simulated network size")
		shardList = flag.String("shards", "1,2,4,8", "comma-separated shard counts to measure")
		ttl       = flag.Int("ttl", 40, "hops per token")
		tokens    = flag.Int("tokens", 0, "concurrent tokens (0 = one per peer)")
		work      = flag.Int("work", 64, "hash-mix rounds per delivery (simulated handler CPU)")
		reps      = flag.Int("reps", 3, "repetitions per shard count (best time wins)")
		seed      = flag.Int64("seed", 1, "workload seed")
		jsonPath  = flag.String("json", "", "write results to this JSON file")
	)
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*shardList, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k < 1 {
			log.Fatalf("bad -shards entry %q", f)
		}
		counts = append(counts, k)
	}

	cfg := simnet.WorkloadConfig{
		Nodes:  *peers,
		Tokens: *tokens,
		TTL:    *ttl,
		Work:   *work,
		Seed:   *seed,
	}
	var runs []run
	var refSum uint64
	var refStats simnet.Stats
	for i, k := range counts {
		c := cfg
		c.Shards = k
		best := time.Duration(1<<62 - 1)
		events := 0
		var sum uint64
		var stats simnet.Stats
		for r := 0; r < *reps; r++ {
			w := simnet.NewWorkload(c)
			start := time.Now()
			n := w.Run()
			if d := time.Since(start); d < best {
				best = d
			}
			events, sum, stats = n, w.Checksum(), w.Net.Stats()
		}
		if i == 0 {
			refSum, refStats = sum, stats
		} else if sum != refSum {
			log.Fatalf("shards=%d checksum %x diverges from shards=%d checksum %x — determinism contract broken",
				k, sum, counts[0], refSum)
		} else if stats.MessagesDelivered != refStats.MessagesDelivered || stats.BytesSent != refStats.BytesSent {
			log.Fatalf("shards=%d stats diverge from shards=%d", k, counts[0])
		}
		r := run{
			Shards:   k,
			Events:   events,
			Seconds:  best.Seconds(),
			Checksum: fmt.Sprintf("%016x", sum),
		}
		if r.Seconds > 0 {
			r.EventsPerS = float64(events) / r.Seconds
		}
		runs = append(runs, r)
	}
	// Speedups relative to the shards=1 run when measured, else to the
	// first run — computed after the sweep so the -shards order is free.
	baseline := runs[0].Seconds
	for _, r := range runs {
		if r.Shards == 1 {
			baseline = r.Seconds
			break
		}
	}
	for i := range runs {
		if baseline > 0 && runs[i].Seconds > 0 {
			runs[i].Speedup = baseline / runs[i].Seconds
		}
		log.Printf("shards=%-2d  %8d events  %8.1f ms  %9.0f events/s  speedup %.2fx",
			runs[i].Shards, runs[i].Events, runs[i].Seconds*1e3, runs[i].EventsPerS, runs[i].Speedup)
	}
	log.Printf("all shard counts agreed on checksum %016x (GOMAXPROCS=%d)", refSum, runtime.GOMAXPROCS(0))

	if *jsonPath != "" {
		payload := map[string]any{
			"benchmark":  "simbench",
			"peers":      *peers,
			"ttl":        *ttl,
			"work":       *work,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"runs":       runs,
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonPath)
	}
}
