// Command p2pnode runs a real-network P2PDocTagger peer: it listens on
// TCP, joins a swarm through seed addresses, learns from tagged text files,
// publishes its calibrated models to the swarm, and answers tag queries
// from a tiny line-oriented console — the deployable counterpart of the
// simulated demo.
//
// Start a first node and tag some files:
//
//	p2pnode -listen 127.0.0.1:7001 -learn music=./music-notes -learn travel=./trips
//
// Join from another terminal (or machine):
//
//	p2pnode -listen 127.0.0.1:7002 -join 127.0.0.1:7001 -learn cooking=./recipes
//
// Console commands on stdin:
//
//	suggest <file>    print the suggestion cloud for a file
//	auto <file>       print auto-assigned tags
//	peers             list known peers
//	publish           retrain and rebroadcast models
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/realnet"
)

// learnFlags collects repeated -learn tag=dir flags.
type learnFlags []string

func (l *learnFlags) String() string { return strings.Join(*l, ",") }
func (l *learnFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("p2pnode: ")
	var learns learnFlags
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	join := flag.String("join", "", "comma-separated seed peer addresses")
	threshold := flag.Float64("threshold", 0.5, "auto-tag confidence threshold")
	seed := flag.Int64("seed", 1, "training seed")
	flag.Var(&learns, "learn", "tag=dir: learn every .txt file under dir as examples of tag (repeatable)")
	flag.Parse()

	var seeds []string
	if *join != "" {
		seeds = strings.Split(*join, ",")
	}
	node, err := realnet.Start(realnet.Config{ListenAddr: *listen, Seeds: seeds, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	fmt.Printf("listening on %s\n", node.Addr())

	learned := 0
	for _, spec := range learns {
		tag, dir, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("bad -learn %q, want tag=dir", spec)
		}
		n, err := learnDir(node, tag, dir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("learned %d documents as %q from %s\n", n, tag, dir)
		learned += n
	}
	if learned > 0 {
		if sum, err := node.Publish(); err != nil {
			log.Printf("publish: %v", err)
		} else {
			printPublish(sum)
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "peers":
			for _, p := range node.Peers() {
				fmt.Println(" ", p)
			}
			fmt.Printf("  (%d model sets known)\n", node.ModelsKnown())
		case "publish":
			if sum, err := node.Publish(); err != nil {
				fmt.Println("error:", err)
			} else {
				printPublish(sum)
			}
		case "suggest", "auto":
			if len(fields) != 2 {
				fmt.Printf("usage: %s <file>\n", fields[0])
				break
			}
			text, err := os.ReadFile(fields[1])
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if fields[0] == "suggest" {
				scores, err := node.Suggest(string(text))
				if err != nil {
					fmt.Println("error:", err)
					break
				}
				for i, s := range scores {
					if i >= 8 {
						break
					}
					fmt.Printf("  %-16s %.3f\n", s.Tag, s.Score)
				}
			} else {
				tags, err := node.AutoTag(string(text), *threshold, 4)
				if err != nil {
					fmt.Println("error:", err)
					break
				}
				fmt.Printf("  %v\n", tags)
			}
		default:
			fmt.Println("commands: suggest <file> | auto <file> | peers | publish | quit")
		}
		fmt.Print("> ")
	}
}

// learnDir feeds every .txt file under dir to the node as an example of
// tag.
// printPublish reports a broadcast's outcome, per-peer failures included —
// a partial broadcast failure must be visible, not silent.
func printPublish(sum realnet.PublishSummary) {
	fmt.Printf("published models to %d peers\n", sum.Reached)
	for peer, err := range sum.Failed {
		fmt.Printf("  failed %s: %v\n", peer, err)
	}
}

func learnDir(node *realnet.Node, tag, dir string) (int, error) {
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".txt") {
			return err
		}
		text, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := node.AddDocument(string(text), tag); err != nil {
			return err
		}
		n++
		return nil
	})
	return n, err
}
