// Command tagbench measures the tagging-path performance trajectory: it
// trains swarms on the standard synthetic corpus and reports, per
// protocol, single-document AutoTag throughput (docs/sec) with p50/p99
// latency and allocations per document, plus micro-sections for the
// stages this repository optimizes — pooled preprocessing
// (Preprocessor.Vectorize), fused multi-tag linear scoring (one
// CSR pass over the document vs one dot product per tag), the 8-wide
// blocked dense layout vs the scalar dense walk, and the streaming
// preprocess+score pipeline vs its materialized twin. With -json it
// writes the results as a machine-readable artifact, the tagging entry in
// the performance trajectory next to BENCH_serving.json and
// BENCH_simnet.json; the committed BENCH_tagging.json at the repository
// root is a reference run.
//
// Usage:
//
//	tagbench [-peers 8] [-users 8] [-tags 8] [-queries 400] [-protocols cempar,local,centralized] [-json BENCH_tagging.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	doctagger "repro"
	"repro/internal/protocol"
	"repro/internal/svm"
	"repro/internal/textproc"
	"repro/internal/vector"
)

type protoRun struct {
	Protocol    string  `json:"protocol"`
	Tags        int     `json:"tags"`
	Queries     int     `json:"queries"`
	DocsPerS    float64 `json:"docs_per_s"`
	P50MicroS   float64 `json:"p50_us"`
	P99MicroS   float64 `json:"p99_us"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

type microRun struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type scoringRun struct {
	Tags          int     `json:"tags"`
	PerTagNsPerOp float64 `json:"per_tag_ns_per_op"`
	FusedNsPerOp  float64 `json:"fused_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

type blockedRun struct {
	Tags           int     `json:"tags"`
	DenseNsPerOp   float64 `json:"dense_ns_per_op"`
	BlockedNsPerOp float64 `json:"blocked_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

type streamingRun struct {
	MaterializedNsPerOp     float64 `json:"materialized_ns_per_op"`
	MaterializedAllocsPerOp float64 `json:"materialized_allocs_per_op"`
	StreamingNsPerOp        float64 `json:"streaming_ns_per_op"`
	StreamingAllocsPerOp    float64 `json:"streaming_allocs_per_op"`
	Speedup                 float64 `json:"speedup"`
}

type report struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Users      int          `json:"users"`
	Peers      int          `json:"peers"`
	AutoTag    []protoRun   `json:"autotag"`
	Vectorize  microRun     `json:"vectorize"`
	Scoring    scoringRun   `json:"fused_scoring"`
	Blocked    blockedRun   `json:"blocked_scoring"`
	Streaming  streamingRun `json:"streaming_batch"`
	Note       string       `json:"note"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tagbench: ")
	var (
		users     = flag.Int("users", 8, "corpus users (one peer per user)")
		numTags   = flag.Int("tags", 8, "corpus tag universe")
		queries   = flag.Int("queries", 400, "AutoTag calls per protocol")
		protoList = flag.String("protocols", "cempar,local,centralized", "comma-separated protocols to measure")
		seed      = flag.Int64("seed", 3, "corpus and swarm seed")
		jsonPath  = flag.String("json", "", "write results to this JSON file")
		extraNote = flag.String("note", "", "extra context appended to the report note (e.g. baseline comparison)")
	)
	flag.Parse()

	docs, tags, err := doctagger.GenerateCorpus(doctagger.CorpusConfig{
		Users: *users, NumTags: *numTags, Seed: *seed,
		DocsPerUserMin: 20, DocsPerUserMax: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := doctagger.SplitCorpus(docs, 0.3, *seed)
	if len(test) == 0 {
		log.Fatal("empty test split")
	}
	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Users:      *users,
		Peers:      *users,
		Note: fmt.Sprintf("single-process run, GOMAXPROCS=%d; latencies include the simulated "+
			"swarm's event processing for network protocols (local = pure preprocess+score path)",
			runtime.GOMAXPROCS(0)),
	}
	if *extraNote != "" {
		rep.Note += "; " + *extraNote
	}

	for _, proto := range strings.Split(*protoList, ",") {
		proto = strings.TrimSpace(proto)
		r, err := benchProtocol(proto, train, test, *users, *queries, *seed)
		if err != nil {
			log.Fatalf("%s: %v", proto, err)
		}
		r.Tags = len(tags)
		rep.AutoTag = append(rep.AutoTag, r)
		fmt.Printf("autotag/%-12s %9.0f docs/s   p50 %7.1fus   p99 %7.1fus   %5.1f allocs/op\n",
			proto, r.DocsPerS, r.P50MicroS, r.P99MicroS, r.AllocsPerOp)
	}

	rep.Vectorize = benchVectorize(train)
	fmt.Printf("vectorize          %9.0f ns/op   %5.1f allocs/op\n",
		rep.Vectorize.NsPerOp, rep.Vectorize.AllocsPerOp)

	rep.Scoring = benchScoring(train, test, *seed)
	fmt.Printf("scoring %d tags:   per-tag %7.0f ns/op   fused %7.0f ns/op   %.2fx\n",
		rep.Scoring.Tags, rep.Scoring.PerTagNsPerOp, rep.Scoring.FusedNsPerOp, rep.Scoring.Speedup)

	rep.Blocked = benchBlockedScoring(*seed)
	fmt.Printf("blocked %d tags:  dense %7.0f ns/op   blocked %7.0f ns/op   %.2fx\n",
		rep.Blocked.Tags, rep.Blocked.DenseNsPerOp, rep.Blocked.BlockedNsPerOp, rep.Blocked.Speedup)

	rep.Streaming = benchStreamingBatch(train, test, *seed)
	fmt.Printf("streaming batch:   mat %7.0f ns/op (%.1f allocs)   stream %7.0f ns/op (%.1f allocs)   %.2fx\n",
		rep.Streaming.MaterializedNsPerOp, rep.Streaming.MaterializedAllocsPerOp,
		rep.Streaming.StreamingNsPerOp, rep.Streaming.StreamingAllocsPerOp, rep.Streaming.Speedup)

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonPath)
	}
}

// benchProtocol trains one swarm and measures per-document AutoTag.
func benchProtocol(proto string, train, test []doctagger.CorpusDoc, peers, queries int, seed int64) (protoRun, error) {
	tg, err := doctagger.New(doctagger.Config{Protocol: proto, Peers: peers, Seed: seed})
	if err != nil {
		return protoRun{}, err
	}
	for _, d := range train {
		if err := tg.AddDocument(d.User%peers, d.Text, d.Tags...); err != nil {
			return protoRun{}, err
		}
	}
	if err := tg.Train(); err != nil {
		return protoRun{}, err
	}
	// Warm pools and caches.
	if _, err := tg.AutoTag(test[0].Text); err != nil {
		return protoRun{}, err
	}

	lat := make([]time.Duration, queries)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < queries; i++ {
		t0 := time.Now()
		if _, err := tg.AutoTag(test[i%len(test)].Text); err != nil {
			return protoRun{}, err
		}
		lat[i] = time.Since(t0)
	}
	total := time.Since(start)
	runtime.ReadMemStats(&ms1)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := float64(queries)
	return protoRun{
		Protocol:    proto,
		Queries:     queries,
		DocsPerS:    q / total.Seconds(),
		P50MicroS:   float64(lat[queries/2].Microseconds()),
		P99MicroS:   float64(lat[queries*99/100].Microseconds()),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / q,
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / q,
	}, nil
}

// benchVectorize measures the pooled preprocessing fast path alone.
func benchVectorize(train []doctagger.CorpusDoc) microRun {
	p := textproc.NewPreprocessor(nil, textproc.Options{Normalize: true})
	for _, d := range train {
		p.Vectorize(d.Text) // warm the lexicon
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Vectorize(train[i%len(train)].Text)
		}
	})
	return microRun{
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: float64(res.AllocsPerOp()),
	}
}

// benchScoring trains a one-vs-all linear bank on the corpus and compares
// per-tag Decision scoring against the fused CSR pass over identical
// documents, verifying equality as it goes.
func benchScoring(train, test []doctagger.CorpusDoc, seed int64) scoringRun {
	pre := textproc.NewPreprocessor(nil, textproc.Options{Normalize: true})
	var pdocs []protocol.Doc
	for _, d := range train {
		pdocs = append(pdocs, protocol.Doc{X: pre.Vectorize(d.Text), Tags: d.Tags})
	}
	bank := make(map[string]*svm.LinearModel)
	for _, tag := range protocol.TagUniverse(pdocs) {
		m, err := svm.TrainLinear(protocol.BinaryExamples(pdocs, tag), svm.LinearOptions{Seed: seed})
		if err != nil {
			continue
		}
		// Prune like the deployed ensembles do before models cross the
		// wire (PACE and realnet ship at 0.02): the fused matrix scores
		// the bank shape that production queries actually see.
		bank[tag] = m.Pruned(0.02)
	}
	fused := svm.NewFusedLinear(bank)
	if fused == nil {
		log.Fatal("scoring bench: no trainable tags")
	}
	order := fused.Tags()
	var queries []*protocolDocVec
	for i := 0; i < len(test) && i < 64; i++ {
		queries = append(queries, &protocolDocVec{x: pre.Vectorize(test[i].Text)})
	}

	perTag := testing.Benchmark(func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			for _, tag := range order {
				sink += bank[tag].Decision(q.x)
			}
		}
		_ = sink
	})
	buf := make([]float64, len(order))
	fusedRes := testing.Benchmark(func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			buf = fused.ScoreInto(queries[i%len(queries)].x, buf)
			sink += buf[0]
		}
		_ = sink
	})

	// Sanity: fused must equal per-tag exactly (also pinned in svm tests).
	for _, q := range queries {
		buf = fused.ScoreInto(q.x, buf)
		for i, tag := range order {
			if buf[i] != bank[tag].Decision(q.x) {
				log.Fatalf("fused score diverged from per-tag Decision on tag %s", tag)
			}
		}
	}

	pt := float64(perTag.NsPerOp())
	fu := float64(fusedRes.NsPerOp())
	return scoringRun{
		Tags:          len(order),
		PerTagNsPerOp: pt,
		FusedNsPerOp:  fu,
		Speedup:       pt / fu,
	}
}

// benchBlockedScoring pits the scalar dense layout against the 8-wide
// blocked one on an identical dense bank — 16 tags, the regime the
// blocked layout exists for — verifying bit-identical scores against
// per-tag Decision on both before timing.
func benchBlockedScoring(seed int64) blockedRun {
	const (
		tags = 16
		dim  = 4096
		fill = 0.6
	)
	rng := rand.New(rand.NewSource(seed))
	bank := make(map[string]*svm.LinearModel, tags)
	for t := 0; t < tags; t++ {
		w := make([]float64, dim)
		for f := range w {
			if rng.Float64() < fill {
				w[f] = rng.NormFloat64()
			}
		}
		bank[fmt.Sprintf("tag%02d", t)] = &svm.LinearModel{W: w, Bias: rng.NormFloat64()}
	}
	var queries []*vector.Sparse
	for q := 0; q < 64; q++ {
		m := map[int32]float64{}
		for j := 0; j < 48; j++ {
			m[rng.Int31n(dim)] = rng.Float64()
		}
		queries = append(queries, vector.FromMap(m).Normalize())
	}

	dense := svm.NewFusedLinearLayout(bank, svm.LayoutDense)
	blocked := svm.NewFusedLinearLayout(bank, svm.LayoutBlocked)
	order := dense.Tags()
	dBuf := make([]float64, len(order))
	bBuf := make([]float64, len(order)+8) // room for the padded tail
	for _, q := range queries {
		dBuf = dense.ScoreInto(q, dBuf)
		bBuf = blocked.ScoreInto(q, bBuf)
		for i, tag := range order {
			want := bank[tag].Decision(q)
			if dBuf[i] != want || bBuf[i] != want {
				log.Fatalf("blocked bench: layout diverged from Decision on tag %s", tag)
			}
		}
	}

	denseRes := testing.Benchmark(func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			dBuf = dense.ScoreInto(queries[i%len(queries)], dBuf)
			sink += dBuf[0]
		}
		_ = sink
	})
	blockedRes := testing.Benchmark(func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			bBuf = blocked.ScoreInto(queries[i%len(queries)], bBuf)
			sink += bBuf[0]
		}
		_ = sink
	})
	dn := float64(denseRes.NsPerOp())
	bn := float64(blockedRes.NsPerOp())
	return blockedRun{Tags: tags, DenseNsPerOp: dn, BlockedNsPerOp: bn, Speedup: dn / bn}
}

// benchStreamingBatch measures one document through preprocess+score both
// ways: materialized (Vectorize allocates a *vector.Sparse, ScoreInto
// reads it) against streaming (VectorizeInto hands pooled entries
// straight to ScoreEntriesInto), equality-checked per document first.
func benchStreamingBatch(train, test []doctagger.CorpusDoc, seed int64) streamingRun {
	pre := textproc.NewPreprocessor(nil, textproc.Options{Normalize: true})
	var pdocs []protocol.Doc
	for _, d := range train {
		pdocs = append(pdocs, protocol.Doc{X: pre.Vectorize(d.Text), Tags: d.Tags})
	}
	bank := make(map[string]*svm.LinearModel)
	for _, tag := range protocol.TagUniverse(pdocs) {
		m, err := svm.TrainLinear(protocol.BinaryExamples(pdocs, tag), svm.LinearOptions{Seed: seed})
		if err != nil {
			continue
		}
		bank[tag] = m.Pruned(0.02)
	}
	fused := svm.NewFusedLinear(bank)
	if fused == nil {
		log.Fatal("streaming bench: no trainable tags")
	}
	docs := test
	if len(docs) > 64 {
		docs = docs[:64]
	}

	matBuf := make([]float64, len(fused.Tags()))
	strBuf := make([]float64, len(fused.Tags())+8)
	visit := func(entries []vector.Entry) { strBuf = fused.ScoreEntriesInto(entries, strBuf) }
	for _, d := range docs {
		matBuf = fused.ScoreInto(pre.Vectorize(d.Text), matBuf)
		pre.VectorizeInto(d.Text, visit)
		for i := range matBuf {
			if matBuf[i] != strBuf[i] {
				log.Fatal("streaming bench: streamed scores diverged from materialized")
			}
		}
	}

	mat := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			matBuf = fused.ScoreInto(pre.Vectorize(docs[i%len(docs)].Text), matBuf)
			sink += matBuf[0]
		}
		_ = sink
	})
	str := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			pre.VectorizeInto(docs[i%len(docs)].Text, visit)
			sink += strBuf[0]
		}
		_ = sink
	})
	mn := float64(mat.NsPerOp())
	sn := float64(str.NsPerOp())
	return streamingRun{
		MaterializedNsPerOp:     mn,
		MaterializedAllocsPerOp: float64(mat.AllocsPerOp()),
		StreamingNsPerOp:        sn,
		StreamingAllocsPerOp:    float64(str.AllocsPerOp()),
		Speedup:                 mn / sn,
	}
}

type protocolDocVec struct{ x *vector.Sparse }
