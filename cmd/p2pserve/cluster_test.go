package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	doctagger "repro"
	"repro/internal/realnet"
)

// clusterOptions is testOptions tuned for cluster tests: the local
// protocol trains in milliseconds, and the ensemble knobs match the flag
// defaults.
func clusterOptions() options {
	o := testOptions()
	o.protocol = "local"
	o.threshold = 0.5
	o.maxTags = 4
	return o
}

// testMesh is the fast-knob realnet configuration cluster tests run on:
// tiny backoffs and a 100ms anti-entropy interval so quarantine,
// re-probe and convergence all play out in well under a second.
func testMesh(seed int64, dial realnet.DialFunc, seeds ...string) realnet.Config {
	return realnet.Config{
		Seed:            seed,
		Seeds:           seeds,
		Dial:            dial,
		DialTimeout:     time.Second,
		MaxAttempts:     2,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      10 * time.Millisecond,
		QuarantineAfter: 2,
		QuarantineFor:   100 * time.Millisecond,
		GossipInterval:  100 * time.Millisecond,
	}
}

// clusterNode is one in-process p2pserve node under test: the app, its
// HTTP front-end, and the client-side count of answer rows asked of it
// (the number Stats().Issued must equal at the end).
type clusterNode struct {
	a      *app
	ts     *httptest.Server
	issued atomic.Int64
}

func startClusterNode(t *testing.T, o options, build func(int) (*doctagger.Tagger, error),
	trainTexts []realnet.TaggedText, cfg realnet.Config) *clusterNode {
	t.Helper()
	pool, err := newPool(o, build)
	if err != nil {
		t.Fatal(err)
	}
	a := &app{pool: pool, build: build, o: o, trainTexts: trainTexts}
	if err := a.startMesh(cfg); err != nil {
		pool.Close()
		t.Fatal(err)
	}
	return &clusterNode{a: a, ts: httptest.NewServer(a.mux())}
}

func (n *clusterNode) stop() {
	n.ts.Close()
	n.a.draining.Store(true)
	n.a.closeMesh()
	n.a.pool.Close()
}

// installedSeq reports the gossiped generation the node's pool serves, or
// 0 if it still serves its initial tagger generation.
func (n *clusterNode) installedSeq() uint64 {
	n.a.genMu.Lock()
	defer n.a.genMu.Unlock()
	if n.a.lastGen == nil {
		return 0
	}
	return n.a.lastGen.Seq
}

// checkIdentity asserts the serving accounting identity on the node:
// every answer row the clients asked for is accounted for exactly once.
func (n *clusterNode) checkIdentity(t *testing.T, name string) {
	t.Helper()
	st := n.a.pool.Stats()
	if st.Issued != st.Served+st.CacheHits+st.Coalesced+st.Deduped {
		t.Errorf("%s: identity broken: Issued %d != Served %d + CacheHits %d + Coalesced %d + Deduped %d",
			name, st.Issued, st.Served, st.CacheHits, st.Coalesced, st.Deduped)
	}
	if want := n.issued.Load(); st.Issued != want {
		t.Errorf("%s: Issued = %d, clients asked for %d rows", name, st.Issued, want)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestClusterChaos is the cluster acceptance test: three mesh-joined
// serving nodes under continuous query load while one node is killed and
// restarted and another is partitioned and healed. Throughout, every
// query is answered (zero dropped requests) with a result byte-identical
// to one of the two serial references — the initial tagger generation or
// the published model generation — a generation published on one node
// reaches every survivor through gossip and installs through the swap
// path, and the serving accounting identity holds on every node against a
// client-side row count.
func TestClusterChaos(t *testing.T) {
	o := clusterOptions()
	build, queries, trainTexts, err := makeBuild(o)
	if err != nil {
		t.Fatal(err)
	}
	probes := queries[:min(12, len(queries))]

	// Serial references. refTagger is what build(0) answers alone — the
	// pools must match it before the publish. refEnsemble is what a
	// single ensemble over the deterministically trained set answers —
	// the pools must match it after installing the gossiped generation.
	tg, err := build(0)
	if err != nil {
		t.Fatal(err)
	}
	refTagger := make(map[string]string, len(probes))
	for _, q := range probes {
		tags, err := tg.AutoTag(q)
		if err != nil {
			t.Fatal(err)
		}
		refTagger[q] = fmt.Sprint(tags)
	}
	set, err := realnet.TrainModelSet(trainTexts, 1, o.seed)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := realnet.NewEnsemble(o.threshold, o.maxTags, set)
	if err != nil {
		t.Fatal(err)
	}
	ensRows, err := ens.AutoTagBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	refEnsemble := make(map[string]string, len(probes))
	for i, q := range probes {
		refEnsemble[q] = fmt.Sprint(ensRows[i])
	}

	// Shared dialer with an injectable partition: while partitioned, every
	// dial to the victim fails (and the victim's own config uses the same
	// dialer, so its outbound dials to anyone fail symmetrically — the
	// victim is fully cut off, not just unreachable).
	var partitioned atomic.Bool
	var victim atomic.Value // string mesh address
	victim.Store("")
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		if partitioned.Load() && addr == victim.Load().(string) {
			return nil, fmt.Errorf("injected: partitioned")
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	victimDial := func(addr string, timeout time.Duration) (net.Conn, error) {
		if partitioned.Load() {
			return nil, fmt.Errorf("injected: partitioned")
		}
		return dial(addr, timeout)
	}

	na := startClusterNode(t, o, build, trainTexts, testMesh(1, dial))
	defer na.stop()
	nb := startClusterNode(t, o, build, trainTexts, testMesh(2, dial, na.a.mesh.Addr()))
	nc := startClusterNode(t, o, build, trainTexts, testMesh(3, victimDial, na.a.mesh.Addr()))
	defer nc.stop()
	waitFor(t, "membership", func() bool {
		return len(na.a.mesh.Peers()) >= 2 && len(nb.a.mesh.Peers()) >= 2 && len(nc.a.mesh.Peers()) >= 2
	})

	// Continuous query load on every node for the duration of the chaos:
	// each answer must byte-match one of the two serial references for
	// its query — a response from any third, inconsistent state fails.
	ctx := t.Context()
	stops := map[*clusterNode]chan struct{}{}
	var wg sync.WaitGroup
	hammer := func(name string, n *clusterNode) {
		stop := make(chan struct{})
		stops[n] = stop
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := probes[i%len(probes)]
				tags, err := n.a.pool.Tag(ctx, q)
				if err != nil {
					t.Errorf("%s: dropped request during chaos: %v", name, err)
					return
				}
				n.issued.Add(1)
				if got := fmt.Sprint(tags); got != refTagger[q] && got != refEnsemble[q] {
					t.Errorf("%s: answer %s for %q matches no generation (tagger %s, ensemble %s)",
						name, got, q, refTagger[q], refEnsemble[q])
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	hammer("node-a", na)
	hammer("node-b", nb)
	hammer("node-c", nc)
	time.Sleep(50 * time.Millisecond)

	// Chaos, step 1: node B dies mid-run (its own load stops with it; the
	// accounting identity must hold on everything it served up to then).
	close(stops[nb])
	delete(stops, nb)
	nb.stop()
	nb.checkIdentity(t, "node-b (killed)")

	// Chaos, step 2: node C is partitioned off.
	victim.Store(nc.a.mesh.Addr())
	partitioned.Store(true)

	// Publish a model generation on node A over its HTTP API. B is dead
	// and C is partitioned, so the broadcast must report C as failed —
	// and A itself must install the generation regardless.
	resp, err := http.Post(na.ts.URL+"/v1/publish", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pub struct {
		Seq     uint64            `json:"seq"`
		Origin  string            `json:"origin"`
		Reached int               `json:"reached"`
		Failed  map[string]string `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("publish: status %d", resp.StatusCode)
	}
	if pub.Seq != 1 || pub.Origin != na.a.mesh.Addr() {
		t.Fatalf("publish reported seq %d origin %s", pub.Seq, pub.Origin)
	}
	if _, cut := pub.Failed[nc.a.mesh.Addr()]; !cut {
		t.Fatalf("publish did not report the partitioned peer as failed: %+v", pub)
	}
	waitFor(t, "publisher installed its own generation", func() bool { return na.installedSeq() == pub.Seq })
	if nc.installedSeq() != 0 {
		t.Fatal("partitioned node received the generation through the partition")
	}

	// Chaos, step 3: node B restarts at a fresh mesh address and must
	// catch up on the already-published generation via the hello path.
	nb2 := startClusterNode(t, o, build, trainTexts, testMesh(4, dial, na.a.mesh.Addr()))
	defer nb2.stop()
	waitFor(t, "restarted node caught up", func() bool { return nb2.installedSeq() == pub.Seq })

	// Chaos, step 4: the partition heals; the origin's anti-entropy
	// rebroadcast must reach C — including through quarantine re-probe.
	partitioned.Store(false)
	waitFor(t, "healed node converged", func() bool { return nc.installedSeq() == pub.Seq })

	for _, stop := range stops {
		close(stop)
	}
	wg.Wait()

	// Post-convergence: every surviving node answers the probe set
	// byte-identically to the serial ensemble reference.
	for name, n := range map[string]*clusterNode{"node-a": na, "node-b2": nb2, "node-c": nc} {
		for _, q := range probes {
			tags, err := n.a.pool.Tag(ctx, q)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			n.issued.Add(1)
			if got := fmt.Sprint(tags); got != refEnsemble[q] {
				t.Errorf("%s: answer %s for %q, serial ensemble says %s", name, got, q, refEnsemble[q])
			}
		}
		n.checkIdentity(t, name)
	}

	// The /v1/stats mesh section reports the installed generation and live
	// transport counters.
	statsResp, err := http.Get(na.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if st.Mesh == nil {
		t.Fatal("/v1/stats has no mesh section in cluster mode")
	}
	if st.Mesh.Generation == nil || st.Mesh.Generation.Seq != pub.Seq || st.Mesh.Generation.Origin != pub.Origin {
		t.Errorf("mesh generation = %+v, want seq %d origin %s", st.Mesh.Generation, pub.Seq, pub.Origin)
	}
	var framesOut int64
	for _, ps := range st.Mesh.Transport.Peers {
		framesOut += ps.FramesOut
	}
	if framesOut == 0 {
		t.Error("publisher transport counters show no frames sent")
	}
}

// TestClusterLoadgenWritesJSON runs the in-process cluster load generator
// end to end and checks the artifact: both phases report full per-node
// throughput with the accounting identity intact, and the cluster
// converged on a byte-identical generation.
func TestClusterLoadgenWritesJSON(t *testing.T) {
	o := clusterOptions()
	o.loadgenCluster = true
	o.clusterNodes = 3
	o.requests = 64
	o.jsonPath = t.TempDir() + "/bench.json"
	build, queries, trainTexts, err := makeBuild(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := runClusterLoadgen(o, build, queries, trainTexts); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(o.jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Benchmark     string         `json:"benchmark"`
		Nodes         int            `json:"nodes"`
		ConvergenceMS float64        `json:"convergence_ms"`
		Identical     bool           `json:"identical"`
		FramesOut     int64          `json:"frames_out"`
		Phases        []clusterPhase `json:"phases"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Benchmark != "p2pserve-cluster" || payload.Nodes != 3 || !payload.Identical {
		t.Fatalf("payload = %+v", payload)
	}
	if payload.ConvergenceMS <= 0 || payload.FramesOut == 0 {
		t.Errorf("convergence %.3fms over %d frames; want both positive", payload.ConvergenceMS, payload.FramesOut)
	}
	if len(payload.Phases) != 2 {
		t.Fatalf("phases = %+v", payload.Phases)
	}
	for _, ph := range payload.Phases {
		if len(ph.Nodes) != 3 {
			t.Fatalf("phase %s ran on %d nodes", ph.Phase, len(ph.Nodes))
		}
		for _, run := range ph.Nodes {
			if run.Requests != 64 || run.Errors != 0 || !run.IdentityOK {
				t.Errorf("phase %s node %d: %+v", ph.Phase, run.Node, run)
			}
		}
	}
}
