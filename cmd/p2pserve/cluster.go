// Cluster mode: N p2pserve processes form a realnet mesh and gossip whole
// model generations instead of each retraining behind /v1/refresh.
//
//	p2pserve -mesh 127.0.0.1:7101 -addr :8473
//	p2pserve -mesh 127.0.0.1:7102 -mesh-join 127.0.0.1:7101 -addr :8474
//
// POST /v1/publish on any node trains a model generation from the shared
// corpus, installs it locally through the serving swap path, and floods it
// over the mesh; every reachable node — including peers that were dead,
// partitioned or quarantined and come back — converges on the same
// generation and installs it with zero dropped requests. GET /v1/stats
// grows a "mesh" section with the per-peer transport counters (sends,
// retries, failures, frames and bytes in/out, quarantine state) and the
// installed generation.
//
// The cluster loadgen (-loadgen-cluster) benchmarks the whole composition
// in-process: it stands up -cluster-nodes mesh-joined pools, measures
// per-node throughput, publishes a generation mid-run, measures how long
// the cluster takes to converge, verifies every node answers the
// post-convergence workload byte-identically, and checks the serving
// accounting identity (issued = served + cache hits + coalesced + deduped)
// on every node.

package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"encoding/json"

	doctagger "repro"
	"repro/internal/realnet"
)

// meshConfig maps the mesh flags onto a realnet node configuration.
func meshConfig(o options) realnet.Config {
	var seeds []string
	if o.meshJoin != "" {
		seeds = strings.Split(o.meshJoin, ",")
	}
	return realnet.Config{ListenAddr: o.mesh, Seeds: seeds, Seed: o.seed}
}

// maxPublishBytes bounds a /v1/publish request body; maxPublishDocs caps
// how many documents one publish may train on.
const (
	maxPublishBytes = 8 << 20
	maxPublishDocs  = 4096
)

// probeSampleSize is how many training documents seed the mesh node's
// holdout probe when the flags don't configure one explicitly.
const probeSampleSize = 32

// probeSample picks a deterministic holdout slice from the training split
// for the Byzantine admission probe: every node samples the same way, so
// the whole cluster agrees on what an inbound generation must get right.
func probeSample(docs []realnet.TaggedText, n int) []realnet.TaggedText {
	if len(docs) <= n {
		return docs
	}
	out := make([]realnet.TaggedText, 0, n)
	step := len(docs) / n
	for i := 0; i < len(docs) && len(out) < n; i += step {
		out = append(out, docs[i])
	}
	return out
}

// startMesh joins the realnet mesh: gossiped model generations install
// into the live pool as they arrive — after passing the realnet admission
// pipeline, which this wires a holdout probe into (sampled from the
// training split unless the config brings its own), so SwapEngines only
// ever installs trust-admitted generations.
func (a *app) startMesh(cfg realnet.Config) error {
	if cfg.ProbeDocs == nil {
		cfg.ProbeDocs = probeSample(a.trainTexts, probeSampleSize)
	}
	cfg.OnGeneration = func(gen realnet.Generation) {
		if a.draining.Load() {
			return
		}
		if err := a.installGeneration(gen); err != nil {
			log.Printf("install gossiped generation %d from %s: %v", gen.Seq, gen.Origin, err)
		} else {
			log.Printf("installed gossiped generation %d from %s", gen.Seq, gen.Origin)
		}
	}
	node, err := realnet.Start(cfg)
	if err != nil {
		return err
	}
	a.mesh = node
	return nil
}

// closeMesh stops the mesh node, if any; safe to call in standalone mode.
func (a *app) closeMesh() {
	if a.mesh != nil {
		_ = a.mesh.Close()
	}
}

// installGeneration swaps a gossiped model generation into the live pool:
// one ensemble engine per shard, all over the same immutable set, through
// the draining SwapEngines path — queries in flight are answered, nothing
// is dropped, and the result cache flushes with the generation. Installs
// are serialized and ordered: a generation older than the newest installed
// one is skipped (gossip can deliver two quick publishes to the task pool
// out of order).
func (a *app) installGeneration(gen realnet.Generation) error {
	a.genMu.Lock()
	defer a.genMu.Unlock()
	if last := a.lastGen; last != nil &&
		(gen.Seq < last.Seq || (gen.Seq == last.Seq && gen.Origin <= last.Origin)) {
		return nil
	}
	engines := make([]doctagger.Engine, a.o.shards)
	for i := range engines {
		e, err := realnet.NewEnsemble(a.o.threshold, a.o.maxTags, gen.Set)
		if err != nil {
			return err
		}
		engines[i] = e
	}
	//dmtvet:allow lockdiscipline genMu serializes gossip-driven generation installs; holding it across the drain is what makes installs ordered
	if err := a.pool.SwapEngines(engines...); err != nil {
		return err
	}
	a.lastGen = &gen
	return nil
}

// trainGeneration builds the model set a /v1/publish gossips: per-tag
// calibrated linear models over docs (the corpus training split when docs
// is nil). Deterministic in (docs, seed), so any node publishing from the
// same inputs produces the same bytes.
func (a *app) trainGeneration(docs []realnet.TaggedText) (*realnet.ModelSet, error) {
	if docs == nil {
		docs = a.trainTexts
	}
	if len(docs) == 0 {
		return nil, errors.New("no training texts")
	}
	return realnet.TrainModelSet(docs, 1, a.o.seed)
}

// publishDoc is one labeled training document in a /v1/publish body.
type publishDoc struct {
	Text string   `json:"text"`
	Tags []string `json:"tags"`
}

// parsePublishDocs validates an optional /v1/publish request body. An
// empty body means "train on the configured corpus" (nil, nil); a JSON
// body must carry a non-empty, bounded document set with per-document
// text and at least one tag — anything else is a client error, reported
// before any training runs on it.
func parsePublishDocs(r *http.Request) ([]realnet.TaggedText, error) {
	var req struct {
		Docs []publishDoc `json:"docs"`
	}
	err := json.NewDecoder(r.Body).Decode(&req)
	if errors.Is(err, io.EOF) {
		return nil, nil // no body: use the configured corpus
	}
	if err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	if len(req.Docs) == 0 {
		return nil, errors.New("empty document set")
	}
	if len(req.Docs) > maxPublishDocs {
		return nil, fmt.Errorf("%d documents exceed the cap of %d", len(req.Docs), maxPublishDocs)
	}
	docs := make([]realnet.TaggedText, len(req.Docs))
	for i, d := range req.Docs {
		if strings.TrimSpace(d.Text) == "" {
			return nil, fmt.Errorf("document %d has empty text", i)
		}
		if len(d.Tags) == 0 {
			return nil, fmt.Errorf("document %d has no tags", i)
		}
		for _, tag := range d.Tags {
			if strings.TrimSpace(tag) == "" {
				return nil, fmt.Errorf("document %d has an empty tag", i)
			}
		}
		docs[i] = realnet.TaggedText{Text: d.Text, Tags: d.Tags}
	}
	return docs, nil
}

// handlePublish is POST /v1/publish: validate the (optional) document
// payload, train a generation, install it locally, flood it to the mesh,
// and report the per-peer outcome.
func (a *app) handlePublish(w http.ResponseWriter, r *http.Request) {
	if a.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxPublishBytes)
	docs, err := parsePublishDocs(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !a.refreshing.CompareAndSwap(false, true) {
		httpError(w, http.StatusTooManyRequests, errors.New("a publish is already in progress"))
		return
	}
	defer a.refreshing.Store(false)
	start := time.Now()
	set, err := a.trainGeneration(docs)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("untrainable document set: %w", err))
		return
	}
	gen, sum, err := a.mesh.PublishGeneration(set)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	// The publisher installs from the return value (OnGeneration fires
	// only for remotely received generations).
	if err := a.installGeneration(gen); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	failed := map[string]string{}
	for peer, err := range sum.Failed {
		failed[peer] = err.Error()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"seq":     gen.Seq,
		"origin":  gen.Origin,
		"reached": sum.Reached,
		"failed":  failed,
		"seconds": time.Since(start).Seconds(),
	})
}

// meshStatus is the "mesh" section of /v1/stats in cluster mode.
type meshStatus struct {
	Addr       string                 `json:"addr"`
	Peers      []string               `json:"peers"`
	Transport  realnet.TransportStats `json:"transport"`
	Trust      realnet.TrustStats     `json:"trust"`
	Generation *installedGeneration   `json:"generation,omitempty"`
}

// installedGeneration identifies the gossiped generation the pool serves.
type installedGeneration struct {
	Seq    uint64 `json:"seq"`
	Origin string `json:"origin"`
	Tags   int    `json:"tags"`
}

// statsResponse embeds the serving counters (keeping the standalone JSON
// shape byte-compatible) and adds the mesh section in cluster mode.
type statsResponse struct {
	doctagger.ServerStats
	Mesh *meshStatus `json:"mesh,omitempty"`
}

func (a *app) statsPayload() statsResponse {
	resp := statsResponse{ServerStats: a.pool.Stats()}
	if a.mesh == nil {
		return resp
	}
	ms := &meshStatus{
		Addr:      a.mesh.Addr(),
		Peers:     a.mesh.Peers(),
		Transport: a.mesh.Transport(),
		Trust:     a.mesh.Trust(),
	}
	a.genMu.Lock()
	if g := a.lastGen; g != nil {
		ms.Generation = &installedGeneration{Seq: g.Seq, Origin: g.Origin, Tags: len(g.Set.Models)}
	}
	a.genMu.Unlock()
	resp.Mesh = ms
	return resp
}

// ---------------------------------------------------------------------------
// Cluster load generator

// clusterNodeRun is one node's share of a cluster loadgen phase.
type clusterNodeRun struct {
	Node         int     `json:"node"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	RequestsPerS float64 `json:"rps"`
	CacheHits    int64   `json:"cache_hits"`
	IdentityOK   bool    `json:"identity_ok"`
}

// clusterPhase aggregates one workload phase across the cluster.
type clusterPhase struct {
	Phase   string           `json:"phase"`
	Seconds float64          `json:"seconds"`
	Nodes   []clusterNodeRun `json:"nodes"`
}

// runClusterLoadgen stands up an in-process cluster of mesh-joined serving
// pools and benchmarks the composition end to end: per-node throughput on
// the initial tagger generation, the wall-clock cost of gossiping and
// installing a published model generation cluster-wide, per-node
// throughput on the gossiped generation, byte-identical answers across
// nodes afterwards, and the serving accounting identity per node.
func runClusterLoadgen(o options, build func(int) (*doctagger.Tagger, error),
	queries []string, trainTexts []realnet.TaggedText) error {
	if o.clusterNodes < 2 {
		return fmt.Errorf("cluster loadgen: %d nodes < 2", o.clusterNodes)
	}
	if len(queries) == 0 {
		return errors.New("cluster loadgen: no test queries")
	}
	log.Printf("starting %d cluster nodes: %d shard(s) each, %s, %d peers ...",
		o.clusterNodes, o.shards, o.protocol, o.peers)
	apps := make([]*app, o.clusterNodes)
	var seeds []string
	for i := range apps {
		pool, err := newPool(o, build)
		if err != nil {
			return err
		}
		a := &app{pool: pool, build: build, o: o, trainTexts: trainTexts}
		cfg := realnet.Config{Seed: o.seed + int64(i), Seeds: seeds, GossipInterval: 200 * time.Millisecond}
		if err := a.startMesh(cfg); err != nil {
			pool.Close()
			return err
		}
		apps[i] = a
		seeds = []string{apps[0].mesh.Addr()}
	}
	defer func() {
		for _, a := range apps {
			a.draining.Store(true)
			a.closeMesh()
			a.pool.Close()
		}
	}()
	if err := waitCluster(apps, 10*time.Second, func(a *app) bool {
		return len(a.mesh.Peers()) >= o.clusterNodes-1
	}); err != nil {
		return fmt.Errorf("cluster loadgen: membership: %w", err)
	}

	phase1 := runClusterPhase("taggers", apps, newQueryMix(queries, o.repeat, o.clusterNodes), o.requests)

	// Publish a generation on node 0 and time cluster-wide convergence:
	// every node (publisher included) must install it through the swap
	// path while the workload above has already warmed the pools.
	set, err := apps[0].trainGeneration(nil)
	if err != nil {
		return err
	}
	start := time.Now()
	gen, sum, err := apps[0].mesh.PublishGeneration(set)
	if err != nil {
		return err
	}
	if err := apps[0].installGeneration(gen); err != nil {
		return err
	}
	if err := waitCluster(apps, 10*time.Second, func(a *app) bool {
		a.genMu.Lock()
		defer a.genMu.Unlock()
		return a.lastGen != nil && a.lastGen.Seq == gen.Seq
	}); err != nil {
		return fmt.Errorf("cluster loadgen: convergence: %w", err)
	}
	convergence := time.Since(start)
	log.Printf("generation %d reached all %d nodes in %v (broadcast reached %d peers directly)",
		gen.Seq, len(apps), convergence.Round(time.Millisecond), sum.Reached)

	phase2 := runClusterPhase("gossiped-generation", apps, newQueryMix(queries, o.repeat, o.clusterNodes), o.requests)

	// Cross-node byte-identity on the gossiped generation: every node must
	// answer a probe set exactly alike.
	identical := true
	probes := queries[:min(16, len(queries))]
	var reference []string
	for i, a := range apps {
		got := make([]string, len(probes))
		for j, q := range probes {
			tags, err := a.pool.Tag(context.Background(), q)
			if err != nil {
				return fmt.Errorf("cluster loadgen: probe on node %d: %w", i, err)
			}
			got[j] = fmt.Sprint(tags)
		}
		if i == 0 {
			reference = got
			continue
		}
		for j := range got {
			if got[j] != reference[j] {
				identical = false
				log.Printf("node %d diverges on %q: %s vs %s", i, probes[j], got[j], reference[j])
			}
		}
	}
	if !identical {
		return errors.New("cluster loadgen: nodes diverged on the gossiped generation")
	}
	log.Printf("all %d nodes answer the probe set identically", len(apps))

	// Transport totals: what the gossip cost on the wire.
	var framesOut, bytesOut, retries int64
	for _, a := range apps {
		tr := a.mesh.Transport()
		for _, ps := range tr.Peers {
			framesOut += ps.FramesOut
			bytesOut += ps.BytesOut
			retries += ps.Retries
		}
	}
	log.Printf("transport: %d frames, %d bytes, %d retries across the cluster", framesOut, bytesOut, retries)

	if o.jsonPath != "" {
		payload := map[string]any{
			"benchmark":      "p2pserve-cluster",
			"nodes":          o.clusterNodes,
			"shards":         o.shards,
			"protocol":       o.protocol,
			"peers":          o.peers,
			"cache":          o.cache,
			"repeat":         o.repeat,
			"generation_seq": gen.Seq,
			"convergence_ms": float64(convergence.Microseconds()) / 1000,
			"identical":      identical,
			"frames_out":     framesOut,
			"bytes_out":      bytesOut,
			"retries":        retries,
			"phases":         []clusterPhase{phase1, phase2},
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", o.jsonPath)
	}
	return nil
}

// runClusterPhase drives o.requests queries at every node concurrently
// (one client per node) and reports per-node deltas, including whether the
// serving accounting identity held against the client-side request count.
func runClusterPhase(name string, apps []*app, mix queryMix, requests int) clusterPhase {
	before := make([]doctagger.ServerStats, len(apps))
	for i, a := range apps {
		before[i] = a.pool.Stats()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i, a := range apps {
		wg.Add(1)
		go func(i int, a *app) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				_, _ = a.pool.Tag(context.Background(), mix.pick(i, r))
			}
		}(i, a)
	}
	wg.Wait()
	elapsed := time.Since(start)
	phase := clusterPhase{Phase: name, Seconds: elapsed.Seconds()}
	for i, a := range apps {
		after := a.pool.Stats()
		run := clusterNodeRun{
			Node:      i,
			Requests:  after.Issued - before[i].Issued,
			Errors:    after.Errors - before[i].Errors,
			CacheHits: after.CacheHits - before[i].CacheHits,
			// The identity: rows this phase's client asked for equal the
			// node's issued delta, and the node-side breakdown adds up.
			IdentityOK: after.Issued-before[i].Issued == int64(requests) &&
				after.Issued == after.Served+after.CacheHits+after.Coalesced+after.Deduped,
		}
		if elapsed.Seconds() > 0 {
			run.RequestsPerS = float64(run.Requests) / elapsed.Seconds()
		}
		phase.Nodes = append(phase.Nodes, run)
		log.Printf("phase %-20s node %d: %8.0f req/s  hits %d  errors %d  identity=%v",
			name, i, run.RequestsPerS, run.CacheHits, run.Errors, run.IdentityOK)
	}
	return phase
}

// waitCluster polls cond on every app until all hold or the deadline
// passes.
func waitCluster(apps []*app, timeout time.Duration, cond func(*app) bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for _, a := range apps {
			if !cond(a) {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return errors.New("timeout")
}
