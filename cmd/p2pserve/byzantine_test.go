package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/realnet"
)

// byzMesh is testMesh with the trust quarantine window shrunk to test
// scale, so demotion and re-probe play out in milliseconds.
func byzMesh(seed int64, seeds ...string) realnet.Config {
	cfg := testMesh(seed, nil, seeds...)
	cfg.TrustQuarantineFor = 100 * time.Millisecond
	return cfg
}

// byzStrike is one scripted adversary action: the attack kind and the
// sequence number its frames carry.
type byzStrike struct {
	kind realnet.AttackKind
	seq  uint64
}

// TestClusterByzantine is the Byzantine acceptance test: three mesh-joined
// serving nodes under continuous query load while a scripted adversary
// injects NaN bombs, weight-scaled poison, label-flipped retrains, forged
// origin floods and stale replays. Every answer must stay byte-identical
// to a serial reference, nothing the adversary sends may install, the
// rejects and trust demotions must show up in /v1/stats, and a dry-run
// sibling adversary from the same seed must reproduce the exact attack
// bytes (identical digests).
func TestClusterByzantine(t *testing.T) {
	o := clusterOptions()
	build, queries, trainTexts, err := makeBuild(o)
	if err != nil {
		t.Fatal(err)
	}
	probes := queries[:min(12, len(queries))]

	// Serial references, exactly as in TestClusterChaos: the initial
	// tagger generation and the honestly published model generation.
	tg, err := build(0)
	if err != nil {
		t.Fatal(err)
	}
	refTagger := make(map[string]string, len(probes))
	for _, q := range probes {
		tags, err := tg.AutoTag(q)
		if err != nil {
			t.Fatal(err)
		}
		refTagger[q] = fmt.Sprint(tags)
	}
	set, err := realnet.TrainModelSet(trainTexts, 1, o.seed)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := realnet.NewEnsemble(o.threshold, o.maxTags, set)
	if err != nil {
		t.Fatal(err)
	}
	ensRows, err := ens.AutoTagBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	refEnsemble := make(map[string]string, len(probes))
	for i, q := range probes {
		refEnsemble[q] = fmt.Sprint(ensRows[i])
	}

	na := startClusterNode(t, o, build, trainTexts, byzMesh(1))
	defer na.stop()
	nb := startClusterNode(t, o, build, trainTexts, byzMesh(2, na.a.mesh.Addr()))
	defer nb.stop()
	nc := startClusterNode(t, o, build, trainTexts, byzMesh(3, na.a.mesh.Addr()))
	defer nc.stop()
	nodes := map[string]*clusterNode{"node-a": na, "node-b": nb, "node-c": nc}
	waitFor(t, "membership", func() bool {
		return len(na.a.mesh.Peers()) >= 2 && len(nb.a.mesh.Peers()) >= 2 && len(nc.a.mesh.Peers()) >= 2
	})

	// Continuous load: every answer must byte-match one of the two serial
	// references — any third state the adversary managed to install fails.
	ctx := t.Context()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for name, n := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := probes[i%len(probes)]
				tags, err := n.a.pool.Tag(ctx, q)
				if err != nil {
					t.Errorf("%s: dropped request under attack: %v", name, err)
					return
				}
				n.issued.Add(1)
				if got := fmt.Sprint(tags); got != refTagger[q] && got != refEnsemble[q] {
					t.Errorf("%s: answer %s for %q matches no honest generation (tagger %s, ensemble %s)",
						name, got, q, refTagger[q], refEnsemble[q])
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)

	// The live adversary targets every node. Its base set is honestly
	// trained, so its poison is plausible — corrupted models, not noise.
	const adversaryOrigin = "10.9.9.9:7000"
	adv, err := realnet.NewAdversary(realnet.AdversaryConfig{
		Seed:    99,
		Origin:  adversaryOrigin,
		Targets: []string{na.a.mesh.Addr(), nb.a.mesh.Addr(), nc.a.mesh.Addr()},
		Docs:    trainTexts,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1, before any honest publish: poison at sequence numbers far
	// ahead of anything legitimate. All of it must be rejected — one
	// reject per poisoned frame per node (the flood forges 4 origins).
	preStrikes := []byzStrike{
		{realnet.AttackNaNBomb, 100},
		{realnet.AttackWeightScale, 101},
		{realnet.AttackLabelFlip, 102},
		{realnet.AttackForgedFlood, 103},
	}
	for _, s := range preStrikes {
		if err := adv.Strike(s.kind, s.seq); err != nil {
			t.Fatalf("strike %v seq %d: %v", s.kind, s.seq, err)
		}
	}
	for name, n := range nodes {
		waitFor(t, name+" rejected the poison barrage", func() bool {
			return n.a.mesh.Transport().Rejects >= 7
		})
		if got := n.installedSeq(); got != 0 {
			t.Fatalf("%s: installed generation %d from the adversary", name, got)
		}
	}

	// The honest publish must go through despite the standing attack: the
	// adversary's high sequence numbers never became anyone's current
	// generation (rejected frames don't advance the order).
	resp, err := http.Post(na.ts.URL+"/v1/publish", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pub struct {
		Seq    uint64 `json:"seq"`
		Origin string `json:"origin"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pub.Seq != 1 {
		t.Fatalf("publish: status %d, seq %d", resp.StatusCode, pub.Seq)
	}
	for name, n := range nodes {
		waitFor(t, name+" installed the honest generation", func() bool {
			return n.installedSeq() == pub.Seq
		})
	}

	// Phase 2, after the publish: a stale replay of the adversary's honest
	// base set at the already-installed sequence (deduplicated, not even a
	// trust event) and one more NaN bomb ahead of the order (rejected).
	postStrikes := []byzStrike{
		{realnet.AttackStaleReplay, 1},
		{realnet.AttackNaNBomb, 150},
	}
	for _, s := range postStrikes {
		if err := adv.Strike(s.kind, s.seq); err != nil {
			t.Fatalf("strike %v seq %d: %v", s.kind, s.seq, err)
		}
	}
	for name, n := range nodes {
		waitFor(t, name+" rejected the post-publish poison", func() bool {
			return n.a.mesh.Transport().Rejects >= 8
		})
		if got := n.installedSeq(); got != pub.Seq {
			t.Fatalf("%s: serving generation %d, want the honest %d", name, got, pub.Seq)
		}
	}

	close(stop)
	wg.Wait()

	// Zero drops, byte-identical convergence, accounting identity.
	for name, n := range nodes {
		for _, q := range probes {
			tags, err := n.a.pool.Tag(ctx, q)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			n.issued.Add(1)
			if got := fmt.Sprint(tags); got != refEnsemble[q] {
				t.Errorf("%s: answer %s for %q, serial ensemble says %s", name, got, q, refEnsemble[q])
			}
		}
		n.checkIdentity(t, name)
	}

	// /v1/stats must surface the attack: nonzero transport rejects and a
	// demoted adversary in the trust section, plus the forged origins.
	statsResp, err := http.Get(na.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if st.Mesh == nil {
		t.Fatal("/v1/stats has no mesh section in cluster mode")
	}
	if st.Mesh.Transport.Rejects == 0 {
		t.Error("/v1/stats shows zero rejects after a poison barrage")
	}
	ot, ok := st.Mesh.Trust.Origins[adversaryOrigin]
	if !ok {
		t.Fatalf("/v1/stats trust section has no entry for the adversary: %+v", st.Mesh.Trust.Origins)
	}
	if ot.Rejected == 0 || ot.Score >= 1 {
		t.Errorf("adversary not demoted: %+v", ot)
	}
	demotedForged := 0
	for origin, o := range st.Mesh.Trust.Origins {
		if strings.HasPrefix(origin, "203.0.113.") && o.Rejected > 0 && o.Score < 1 {
			demotedForged++
		}
	}
	if demotedForged == 0 {
		t.Errorf("no forged flood origin was demoted: %+v", st.Mesh.Trust.Origins)
	}

	// Reproducibility: a dry-run sibling adversary (same seed, no targets)
	// replaying the same script builds byte-identical attacks — the
	// digests match, so the whole run is pinned by a single seed.
	dry, err := realnet.NewAdversary(realnet.AdversaryConfig{
		Seed:   99,
		Origin: adversaryOrigin,
		Docs:   trainTexts,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range append(append([]byzStrike(nil), preStrikes...), postStrikes...) {
		if err := dry.Strike(s.kind, s.seq); err != nil {
			t.Fatalf("dry strike %v seq %d: %v", s.kind, s.seq, err)
		}
	}
	if live, replay := adv.Digest(), dry.Digest(); live != replay {
		t.Errorf("attack digests diverge: live %#x, dry replay %#x", live, replay)
	}
}

// TestPublishInputValidation drives POST /v1/publish through every
// malformed-body shape: each must come back 400 with a structured error
// and leave the node serving its initial generation, while a valid custom
// document set trains and publishes.
func TestPublishInputValidation(t *testing.T) {
	o := clusterOptions()
	build, _, trainTexts, err := makeBuild(o)
	if err != nil {
		t.Fatal(err)
	}
	n := startClusterNode(t, o, build, trainTexts, byzMesh(1))
	defer n.stop()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(n.ts.URL+"/v1/publish", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var payload map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatalf("non-JSON response to %q: %v", body, err)
		}
		msg, _ := payload["error"].(string)
		return resp.StatusCode, msg
	}

	tooMany := `{"docs":[` + strings.Repeat(`{"text":"x","tags":["t"]},`, maxPublishDocs) +
		`{"text":"x","tags":["t"]}]}`
	bad := []struct {
		name, body string
	}{
		{"malformed JSON", `{"docs":[`},
		{"trailing garbage", `{"docs":null} extra`},
		{"explicitly empty document set", `{"docs":[]}`},
		{"document with blank text", `{"docs":[{"text":"   ","tags":["music"]}]}`},
		{"document with no tags", `{"docs":[{"text":"a song"}]}`},
		{"document with a blank tag", `{"docs":[{"text":"a song","tags":[""]}]}`},
		{"too many documents", tooMany},
		{"untrainable single-label corpus", `{"docs":[{"text":"a song","tags":["music"]}]}`},
	}
	for _, tc := range bad {
		code, msg := post(tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
		if msg == "" {
			t.Errorf("%s: 400 without a structured error message", tc.name)
		}
	}

	// An oversized body must be cut off at the wire cap, not buffered.
	huge := `{"docs":[{"text":"` + strings.Repeat("x", maxPublishBytes+1024) + `","tags":["t"]}]}`
	if code, msg := post(huge); code != http.StatusBadRequest || msg == "" {
		t.Errorf("oversized body: status %d, error %q; want 400 with a message", code, msg)
	}

	if got := n.installedSeq(); got != 0 {
		t.Fatalf("a rejected publish installed generation %d", got)
	}

	// A valid custom corpus trains, publishes and installs.
	var body bytes.Buffer
	body.WriteString(`{"docs":[`)
	for i, d := range trainTexts {
		if i > 0 {
			body.WriteString(",")
		}
		doc, err := json.Marshal(publishDoc{Text: d.Text, Tags: d.Tags})
		if err != nil {
			t.Fatal(err)
		}
		body.Write(doc)
	}
	body.WriteString(`]}`)
	resp, err := http.Post(n.ts.URL+"/v1/publish", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	var pub struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pub.Seq != 1 {
		t.Fatalf("valid publish: status %d, seq %d", resp.StatusCode, pub.Seq)
	}
	waitFor(t, "custom-corpus generation installed", func() bool { return n.installedSeq() == 1 })
}
