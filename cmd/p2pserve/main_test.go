package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	doctagger "repro"
)

func testOptions() options {
	return options{
		protocol: "cempar",
		peers:    4,
		shards:   2,
		seed:     3,
		docsMin:  4,
		docsMax:  6,
		numTags:  4,
		maxBatch: 8,
		maxDelay: time.Millisecond,
	}
}

func newTestServer(t *testing.T) (*httptest.Server, *doctagger.Server, []string) {
	t.Helper()
	pool, queries, err := buildPool(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(pool))
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return ts, pool, queries
}

func TestTagEndpoint(t *testing.T) {
	ts, pool, queries := newTestServer(t)
	body, _ := json.Marshal(map[string]string{"text": queries[0]})
	resp, err := http.Post(ts.URL+"/v1/tag", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got struct {
		Tags []string `json:"tags"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Tags) == 0 {
		t.Error("no tags returned")
	}
	if st := pool.Stats(); st.Served != 1 {
		t.Errorf("served = %d, want 1", st.Served)
	}
}

func TestTagEndpointRejectsBadInput(t *testing.T) {
	ts, _, _ := newTestServer(t)
	for _, body := range []string{"not json", `{"text": ""}`, `{"text": "   "}`} {
		resp, err := http.Post(ts.URL+"/v1/tag", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	// Wrong method on a method-qualified pattern.
	resp, err := http.Get(ts.URL + "/v1/tag")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/tag status = %d, want 405", resp.StatusCode)
	}
}

func TestHealthAndStatsEndpoints(t *testing.T) {
	ts, _, queries := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
	body, _ := json.Marshal(map[string]string{"text": queries[0]})
	if resp, err = http.Post(ts.URL+"/v1/tag", "application/json", strings.NewReader(string(body))); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st doctagger.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.Served < 1 || st.Network.Messages == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestTagAfterCloseReturns503 pins the drain contract at the HTTP layer:
// once the pool is closed, new requests get Service Unavailable rather
// than a hang or a 500.
func TestTagAfterCloseReturns503(t *testing.T) {
	ts, pool, queries := newTestServer(t)
	pool.Close()
	body, _ := json.Marshal(map[string]string{"text": queries[0]})
	resp, err := http.Post(ts.URL+"/v1/tag", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

// TestLoadgenWritesJSON runs the in-process load generator at two small
// concurrency levels and checks the artifact it writes.
func TestLoadgenWritesJSON(t *testing.T) {
	o := testOptions()
	o.loadgen = true
	o.clients = "1,8"
	o.requests = 32
	o.jsonPath = t.TempDir() + "/bench.json"
	pool, queries, err := buildPool(o)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := runLoadgen(pool, queries, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(o.jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Benchmark string       `json:"benchmark"`
		Runs      []loadgenRun `json:"runs"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Benchmark != "p2pserve-loadgen" || len(payload.Runs) != 2 {
		t.Fatalf("payload = %+v", payload)
	}
	for _, r := range payload.Runs {
		if r.Requests != 32 || r.RequestsPerS <= 0 {
			t.Errorf("run = %+v", r)
		}
	}
	// The 8-client run must show real coalescing.
	if payload.Runs[1].MeanBatchSize <= 1 {
		t.Errorf("8 clients: mean batch %.2f, want > 1", payload.Runs[1].MeanBatchSize)
	}
}
