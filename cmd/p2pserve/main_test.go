package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	doctagger "repro"
)

func testOptions() options {
	return options{
		protocol: "cempar",
		peers:    4,
		shards:   2,
		seed:     3,
		docsMin:  4,
		docsMax:  6,
		numTags:  4,
		maxBatch: 8,
		maxDelay: time.Millisecond,
		cache:    64,
		repeat:   0.9,
	}
}

func newTestApp(t *testing.T) (*httptest.Server, *app, []string) {
	t.Helper()
	o := testOptions()
	build, queries, _, err := makeBuild(o)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := newPool(o, build)
	if err != nil {
		t.Fatal(err)
	}
	a := &app{pool: pool, build: build, o: o}
	ts := httptest.NewServer(a.mux())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return ts, a, queries
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTagEndpoint(t *testing.T) {
	ts, a, queries := newTestApp(t)
	resp := postJSON(t, ts.URL+"/v1/tag", map[string]string{"text": queries[0]})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got struct {
		Tags []string `json:"tags"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Tags) == 0 {
		t.Error("no tags returned")
	}
	if st := a.pool.Stats(); st.Served != 1 {
		t.Errorf("served = %d, want 1", st.Served)
	}
}

func TestTagEndpointRejectsBadInput(t *testing.T) {
	ts, _, _ := newTestApp(t)
	for _, body := range []string{"not json", `{"text": ""}`, `{"text": "   "}`} {
		resp, err := http.Post(ts.URL+"/v1/tag", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	// Wrong method on a method-qualified pattern.
	resp, err := http.Get(ts.URL + "/v1/tag")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/tag status = %d, want 405", resp.StatusCode)
	}
}

// TestTagBatchEndpoint pins the batch API against the single-document one:
// same texts, same tags, one round trip.
func TestTagBatchEndpoint(t *testing.T) {
	ts, _, queries := newTestApp(t)
	texts := []string{queries[0], queries[1%len(queries)], queries[0]}
	want := make([][]string, len(texts))
	for i, text := range texts {
		resp := postJSON(t, ts.URL+"/v1/tag", map[string]string{"text": text})
		var got struct {
			Tags []string `json:"tags"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want[i] = got.Tags
	}
	resp := postJSON(t, ts.URL+"/v1/tag/batch", map[string]any{"texts": texts})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got struct {
		Tags  [][]string `json:"tags"`
		Error string     `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Error != "" {
		t.Fatalf("batch error: %s", got.Error)
	}
	if fmt.Sprint(got.Tags) != fmt.Sprint(want) {
		t.Errorf("batch tags %v != per-document tags %v", got.Tags, want)
	}
}

func TestTagBatchEndpointRejectsBadInput(t *testing.T) {
	ts, _, queries := newTestApp(t)
	huge := make([]string, maxBatchRequestDocs+1)
	for i := range huge {
		huge[i] = queries[0]
	}
	cases := []any{
		map[string]any{"texts": []string{}},
		map[string]any{"texts": []string{queries[0], "  "}},
		map[string]any{"texts": huge},
	}
	for _, body := range cases {
		resp := postJSON(t, ts.URL+"/v1/tag/batch", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	}
}

// TestRefreshEndpoint swaps a freshly retrained generation into the live
// pool and checks the pool still answers afterwards.
func TestRefreshEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("refresh retrains the pool")
	}
	ts, a, queries := newTestApp(t)
	resp := postJSON(t, ts.URL+"/v1/refresh", map[string]any{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got struct {
		Generation int64   `json:"generation"`
		Shards     int     `json:"shards"`
		Seconds    float64 `json:"seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Generation != 2 || got.Shards != 2 {
		t.Errorf("refresh reported generation %d, shards %d", got.Generation, got.Shards)
	}
	tagResp := postJSON(t, ts.URL+"/v1/tag", map[string]string{"text": queries[0]})
	tagResp.Body.Close()
	if tagResp.StatusCode != http.StatusOK {
		t.Errorf("tag after refresh: status = %d", tagResp.StatusCode)
	}
	if st := a.pool.Stats(); st.Generation != 2 {
		t.Errorf("pool generation = %d, want 2", st.Generation)
	}
	// A draining server refuses to retrain.
	a.draining.Store(true)
	resp2 := postJSON(t, ts.URL+"/v1/refresh", map[string]any{})
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("refresh while draining: status = %d, want 503", resp2.StatusCode)
	}
}

// TestReadinessFlipsOnDrain pins the load-balancer contract: /healthz
// stays ok for the process lifetime (liveness), /readyz turns 503 the
// moment draining begins, before the pool stops answering.
func TestReadinessFlipsOnDrain(t *testing.T) {
	ts, a, _ := newTestApp(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s before drain: status = %d", path, resp.StatusCode)
		}
	}
	a.draining.Store(true)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: status = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz while draining: status = %d, want 200 (liveness)", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _, queries := newTestApp(t)
	resp := postJSON(t, ts.URL+"/v1/tag", map[string]string{"text": queries[0]})
	resp.Body.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st doctagger.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.Served < 1 || st.Network.Messages == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Generation != 1 {
		t.Errorf("generation = %d, want 1", st.Generation)
	}
}

// TestTagAfterCloseReturns503 pins the drain contract at the HTTP layer:
// once the pool is closed, new requests get Service Unavailable rather
// than a hang or a 500.
func TestTagAfterCloseReturns503(t *testing.T) {
	ts, a, queries := newTestApp(t)
	a.pool.Close()
	resp := postJSON(t, ts.URL+"/v1/tag", map[string]string{"text": queries[0]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	batchResp := postJSON(t, ts.URL+"/v1/tag/batch", map[string]any{"texts": queries[:1]})
	batchResp.Body.Close()
	if batchResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch status = %d, want 503", batchResp.StatusCode)
	}
}

// TestLoadgenWritesJSON runs the in-process load generator at two small
// concurrency levels — cache off and cache on — and checks the artifact,
// including that caching sped up the repeated-query workload.
func TestLoadgenWritesJSON(t *testing.T) {
	o := testOptions()
	o.loadgen = true
	o.clients = "1,8"
	o.requests = 64
	o.cache = 256
	o.jsonPath = t.TempDir() + "/bench.json"
	build, queries, _, err := makeBuild(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := runLoadgen(o, build, queries); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(o.jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Benchmark string       `json:"benchmark"`
		Runs      []loadgenRun `json:"runs"`
		Speedups  []speedup    `json:"speedups"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Benchmark != "p2pserve-loadgen" || len(payload.Runs) != 4 {
		t.Fatalf("payload = %+v", payload)
	}
	for _, r := range payload.Runs {
		if r.Requests != 64 || r.RequestsPerS <= 0 || r.Errors != 0 {
			t.Errorf("run = %+v", r)
		}
		if r.CacheSize == 0 && r.CacheHits != 0 {
			t.Errorf("cache-off run reported hits: %+v", r)
		}
	}
	// The cache-on runs must actually hit.
	var hits int64
	for _, r := range payload.Runs {
		hits += r.CacheHits
	}
	if hits == 0 {
		t.Error("cache-on runs recorded no hits")
	}
	// The 8-client cache-off run must show real coalescing.
	if payload.Runs[1].MeanBatchSize <= 1 {
		t.Errorf("8 clients uncached: mean batch %.2f, want > 1", payload.Runs[1].MeanBatchSize)
	}
	if len(payload.Speedups) != 2 {
		t.Fatalf("speedups = %+v", payload.Speedups)
	}
	// At 8 clients with a 90% hot-set workload the cached pool should be
	// several times faster; assert a conservative floor to keep the test
	// robust on slow single-core CI machines.
	if s := payload.Speedups[1]; s.Speedup < 2 {
		t.Errorf("8-client cache speedup = %.2fx, want >= 2x", s.Speedup)
	}
}
