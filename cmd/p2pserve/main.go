// Command p2pserve is the serving face of the system: it trains a sharded
// pool of identical tagger swarms over a synthetic delicious-style corpus
// and serves AutoTag queries over HTTP/JSON through the micro-batching
// front-end (doctagger.Server). Concurrent requests coalesce into
// AutoTagBatch calls; repeated queries hit the request-level result cache
// (-cache, 0 disables); /v1/stats shows how well both work.
//
// Endpoints:
//
//	POST /v1/tag        {"text": "..."} -> {"tags": ["...", ...]}
//	POST /v1/tag/batch  {"texts": ["...", ...]} -> {"tags": [["...", ...], ...]}
//	                    (bulk path; blocks under backpressure even with
//	                    -fail-fast, bounded by the request context and the
//	                    1024-document per-request cap; on partial failure
//	                    unanswerable rows are null — retry exactly those)
//	POST /v1/refresh    retrain and swap in a new tagger generation, live
//	POST /v1/publish    cluster mode: train a model generation, install it,
//	                    and gossip it to every mesh peer (see cluster.go)
//	GET  /v1/stats      serving counters, cache counters, swarm traffic;
//	                    in cluster mode also the mesh transport counters
//	                    and the installed gossiped generation
//	GET  /healthz       liveness probe (ok for the process lifetime)
//	GET  /readyz        readiness probe (503 once draining begins)
//
// With -mesh the process additionally joins a realnet cluster (-mesh-join
// lists existing members) and installs model generations gossiped by its
// peers through the same live-swap path — see cluster.go and the
// "Distributed serving cluster" section of the package documentation.
//
// /v1/refresh rebuilds the pool with the same deterministic build the
// process started with and atomically swaps it into the live dispatcher:
// in-flight requests drain on the old generation, new requests run on the
// new one, the result cache flushes, and no request is dropped. In a real
// deployment the rebuild would fold in accumulated tag refinements; here
// it demonstrates the live-swap machinery end to end.
//
// SIGINT/SIGTERM drain gracefully: /readyz flips to 503 first (so load
// balancers stop routing), the listener stops accepting, in-flight and
// queued requests are answered, then the process exits. The pool is closed
// on every exit path — including an HTTP shutdown timeout — so queued
// requests are never silently abandoned (a regression in the first version
// of this command leaked the pool when Shutdown timed out).
//
// The built-in load generator benchmarks the same pool in-process without
// HTTP overhead:
//
//	p2pserve -loadgen -clients 1,8,64 -requests 256 -repeat 0.9 -cache 1024 -json BENCH_serving.json
//
// runs the request mix at each concurrency level twice — cache off, then
// cache on — and reports throughput, the observed batching, cache hits and
// the cache-on/cache-off speedup, optionally as a JSON artifact. -repeat
// sets the fraction of requests drawn from a small hot set of queries, so
// the cache's effect on repeated-query traffic is measured explicitly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	doctagger "repro"
	"repro/internal/realnet"
)

type options struct {
	addr      string
	protocol  string
	peers     int
	shards    int
	seed      int64
	threshold float64
	docsMin   int
	docsMax   int
	numTags   int
	maxBatch  int
	maxDelay  time.Duration
	maxQueue  int
	failFast  bool
	cache     int

	mesh     string
	meshJoin string
	maxTags  int

	loadgen        bool
	loadgenCluster bool
	clusterNodes   int
	clients        string
	requests       int
	repeat         float64
	jsonPath       string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("p2pserve: ")
	var o options
	flag.StringVar(&o.addr, "addr", ":8473", "HTTP listen address")
	flag.StringVar(&o.protocol, "protocol", "cempar", "cempar | pace | centralized | local")
	flag.IntVar(&o.peers, "peers", 8, "swarm size per shard")
	flag.IntVar(&o.shards, "shards", 2, "identically trained tagger swarms in the pool")
	flag.Int64Var(&o.seed, "seed", 1, "corpus and swarm seed")
	flag.Float64Var(&o.threshold, "threshold", 0.5, "confidence threshold for auto-tagging (0 accepts every tag)")
	flag.IntVar(&o.docsMin, "docs-min", 8, "minimum training documents per peer")
	flag.IntVar(&o.docsMax, "docs-max", 12, "maximum training documents per peer")
	flag.IntVar(&o.numTags, "tags", 8, "size of the synthetic tag universe")
	flag.IntVar(&o.maxBatch, "max-batch", 32, "flush a batch at this many requests")
	flag.DurationVar(&o.maxDelay, "max-delay", 2*time.Millisecond, "flush a batch this long after its first request")
	flag.IntVar(&o.maxQueue, "max-queue", 0, "submission queue bound (0 = 8*max-batch)")
	flag.BoolVar(&o.failFast, "fail-fast", false, "reject with 503 when the queue is full instead of blocking")
	flag.IntVar(&o.cache, "cache", 1024, "request-level result cache entries (0 disables)")
	flag.StringVar(&o.mesh, "mesh", "", "realnet mesh listen address; empty = standalone (no gossip)")
	flag.StringVar(&o.meshJoin, "mesh-join", "", "comma-separated mesh addresses of existing cluster nodes")
	flag.IntVar(&o.maxTags, "max-tags", 4, "tag cap for gossiped-generation answers (0 = unlimited)")
	flag.BoolVar(&o.loadgen, "loadgen", false, "run the in-process load generator instead of serving HTTP")
	flag.BoolVar(&o.loadgenCluster, "loadgen-cluster", false, "run the in-process cluster load generator (gossip + chaos) instead of serving HTTP")
	flag.IntVar(&o.clusterNodes, "cluster-nodes", 3, "cluster loadgen: number of in-process cluster nodes")
	flag.StringVar(&o.clients, "clients", "1,8,64", "loadgen: comma-separated concurrency levels")
	flag.IntVar(&o.requests, "requests", 256, "loadgen: requests per concurrency level")
	flag.Float64Var(&o.repeat, "repeat", 0.9, "loadgen: fraction of requests drawn from a hot query set")
	flag.StringVar(&o.jsonPath, "json", "", "loadgen: write results to this JSON file")
	flag.Parse()

	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

func run(o options) error {
	if o.repeat < 0 || o.repeat > 1 {
		return fmt.Errorf("-repeat %v outside [0,1]", o.repeat)
	}
	build, queries, trainTexts, err := makeBuild(o)
	if err != nil {
		return err
	}
	if o.loadgenCluster {
		return runClusterLoadgen(o, build, queries, trainTexts)
	}
	if o.loadgen {
		return runLoadgen(o, build, queries)
	}
	// HTTP mode never replays the test split; drop it rather than pin the
	// whole corpus in this frame for the process lifetime.
	queries = nil
	log.Printf("training %d shard(s): %s, %d peers each ...", o.shards, o.protocol, o.peers)
	start := time.Now()
	pool, err := newPool(o, build)
	if err != nil {
		return err
	}
	log.Printf("pool ready in %v", time.Since(start).Round(time.Millisecond))
	a := &app{pool: pool, build: build, o: o, trainTexts: trainTexts}
	if o.mesh != "" {
		if err := a.startMesh(meshConfig(o)); err != nil {
			pool.Close()
			return err
		}
		log.Printf("mesh node listening on %s", a.mesh.Addr())
	}
	return serveHTTP(a, o)
}

// makeBuild generates the synthetic corpus and returns the deterministic
// per-shard tagger builder over its training split, the test split's texts
// for load generation, and the training split as labeled texts — the input
// cluster nodes train gossiped model generations from. Training from the
// same (corpus, seed) on any node yields byte-identical generations, which
// is what lets the cluster verify answers against a serial reference.
func makeBuild(o options) (func(int) (*doctagger.Tagger, error), []string, []realnet.TaggedText, error) {
	docs, _, err := doctagger.GenerateCorpus(doctagger.CorpusConfig{
		Users:          o.peers,
		DocsPerUserMin: o.docsMin,
		DocsPerUserMax: o.docsMax,
		NumTags:        o.numTags,
		Seed:           o.seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	train, test := doctagger.SplitCorpus(docs, 0.5, o.seed)
	// On the flag, 0 literally means "accept every tag"; translate to the
	// Config sentinel, which reserves 0 for "use the default".
	threshold := o.threshold
	if threshold == 0 {
		threshold = doctagger.ThresholdNone
	}
	build := func(int) (*doctagger.Tagger, error) {
		tg, err := doctagger.New(doctagger.Config{
			Protocol:  o.protocol,
			Peers:     o.peers,
			Threshold: threshold,
			Seed:      o.seed,
		})
		if err != nil {
			return nil, err
		}
		for _, d := range train {
			if err := tg.AddDocument(d.User%o.peers, d.Text, d.Tags...); err != nil {
				return nil, err
			}
		}
		return tg, tg.Train()
	}
	queries := make([]string, 0, len(test))
	for _, d := range test {
		queries = append(queries, d.Text)
	}
	trainTexts := make([]realnet.TaggedText, 0, len(train))
	for _, d := range train {
		trainTexts = append(trainTexts, realnet.TaggedText{Text: d.Text, Tags: d.Tags})
	}
	return build, queries, trainTexts, nil
}

// serverConfig maps the flags onto a pool configuration. cacheSize is
// explicit because loadgen measures the same flag set with the cache off
// and on; every other knob must stay identical between those runs (and
// between loadgen and HTTP mode), which is why both paths come here.
func serverConfig(o options, cacheSize int) doctagger.ServerConfig {
	return doctagger.ServerConfig{
		MaxBatch:  o.maxBatch,
		MaxDelay:  o.maxDelay,
		MaxQueue:  o.maxQueue,
		FailFast:  o.failFast,
		CacheSize: cacheSize,
	}
}

// newPool trains o.shards identical tagger swarms and fronts them with the
// micro-batching dispatcher, caching o.cache answers (0 = off).
func newPool(o options, build func(int) (*doctagger.Tagger, error)) (*doctagger.Server, error) {
	return doctagger.NewReplicatedServer(o.shards, serverConfig(o, o.cache), build)
}

// maxBatchRequestDocs caps one /v1/tag/batch request; larger uploads
// should be split by the client. The byte limits bound request bodies
// before decoding, so a huge upload is refused without being buffered.
const (
	maxBatchRequestDocs  = 1024
	maxTagRequestBytes   = 1 << 20  // 1 MiB: one document
	maxBatchRequestBytes = 16 << 20 // 16 MiB: up to 1024 documents
)

// app is the HTTP-facing state: the live pool, the deterministic builder
// /v1/refresh retrains with, the optional realnet mesh node (cluster
// mode), and the readiness flag the drain sequence flips before the
// listener stops accepting.
type app struct {
	pool     *doctagger.Server
	build    func(int) (*doctagger.Tagger, error)
	o        options
	draining atomic.Bool
	// refreshing rejects refresh requests that arrive while one is
	// already retraining — a retrain burns seconds of CPU, so queueing
	// a burst of them would starve query serving for no benefit.
	refreshing atomic.Bool

	// Cluster state; mesh is nil in standalone mode. trainTexts is the
	// labeled training split /v1/publish trains gossiped generations from.
	mesh       *realnet.Node
	trainTexts []realnet.TaggedText
	genMu      sync.Mutex          // serializes generation installs in arrival order
	lastGen    *realnet.Generation // newest generation installed into the pool
}

// mux wires the HTTP API around the app.
func (a *app) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tag", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Text string `json:"text"`
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxTagRequestBytes)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if strings.TrimSpace(req.Text) == "" {
			httpError(w, http.StatusBadRequest, errors.New("empty text"))
			return
		}
		tags, err := a.pool.Tag(r.Context(), req.Text)
		if err != nil {
			writeTagError(w, err)
			return
		}
		if tags == nil {
			tags = []string{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"tags": tags})
	})
	mux.HandleFunc("POST /v1/tag/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Texts []string `json:"texts"`
		}
		// The byte limit, not the document-count check below, is what
		// actually bounds per-request memory: the decoder would otherwise
		// materialize an arbitrarily large texts array before the count
		// is ever examined.
		r.Body = http.MaxBytesReader(w, r.Body, maxBatchRequestBytes)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if len(req.Texts) == 0 {
			httpError(w, http.StatusBadRequest, errors.New("empty texts"))
			return
		}
		if len(req.Texts) > maxBatchRequestDocs {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("%d texts exceed the per-request limit of %d", len(req.Texts), maxBatchRequestDocs))
			return
		}
		for i, text := range req.Texts {
			if strings.TrimSpace(text) == "" {
				httpError(w, http.StatusBadRequest, fmt.Errorf("empty text at index %d", i))
				return
			}
		}
		tags, err := a.pool.TagBatch(r.Context(), req.Texts)
		if err != nil && !errors.Is(err, doctagger.ErrNoAnswer) {
			writeTagError(w, err)
			return
		}
		// A wrapped ErrNoAnswer is a partial failure: answered rows carry
		// their tags, unanswerable rows stay null — clients retry exactly
		// the null rows. (An answered row with no tags would be [], not
		// null, preserving the library's nil-vs-empty distinction.)
		resp := map[string]any{"tags": tags}
		if err != nil {
			resp["error"] = err.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/refresh", func(w http.ResponseWriter, r *http.Request) {
		if a.draining.Load() {
			httpError(w, http.StatusServiceUnavailable, errors.New("draining"))
			return
		}
		// One retrain at a time, and no queue of them: a burst of refresh
		// requests would otherwise serialize into back-to-back full
		// retrains (Refresh itself only serializes, it cannot coalesce).
		if !a.refreshing.CompareAndSwap(false, true) {
			httpError(w, http.StatusTooManyRequests, errors.New("a refresh is already in progress"))
			return
		}
		defer a.refreshing.Store(false)
		start := time.Now()
		gen, err := a.pool.Refresh(a.build)
		if err != nil {
			if errors.Is(err, doctagger.ErrServerClosed) {
				httpError(w, http.StatusServiceUnavailable, err)
				return
			}
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			// The generation this request installed, from Refresh itself:
			// a Stats snapshot here could already reflect a queued later
			// refresh.
			"generation": gen,
			"shards":     a.pool.Stats().Shards,
			"seconds":    time.Since(start).Seconds(),
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, a.statsPayload())
	})
	if a.mesh != nil {
		mux.HandleFunc("POST /v1/publish", a.handlePublish)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if a.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeTagError maps tagging errors onto HTTP statuses.
func writeTagError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, doctagger.ErrOverloaded), errors.Is(err, doctagger.ErrServerClosed):
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, doctagger.ErrNoAnswer):
		httpError(w, http.StatusBadGateway, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away; nothing useful to write.
		httpError(w, http.StatusServiceUnavailable, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// serveHTTP runs the API until SIGINT/SIGTERM, then drains: /readyz goes
// unready first, the listener shuts down second, the pool third, so load
// balancers stop routing and every accepted request is answered. The pool
// is closed on every exit path — in particular, an http.Server.Shutdown
// timeout must not leak the pool with requests still queued (regression:
// the original drain returned early on that path and abandoned them).
func serveHTTP(a *app, o options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: o.addr, Handler: a.mux()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", o.addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		a.draining.Store(true)
		a.closeMesh()
		a.pool.Close()
		return err
	case <-ctx.Done():
	}
	a.draining.Store(true)
	log.Print("shutting down: draining in-flight requests ...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	// Close the mesh first — no more gossiped generations arrive once
	// draining began — then the pool, whether or not the HTTP shutdown
	// timed out: accepted requests are still drained and answered.
	a.closeMesh()
	a.pool.Close()
	if shutdownErr != nil {
		return fmt.Errorf("http shutdown: %w", shutdownErr)
	}
	st := a.pool.Stats()
	log.Printf("drained: served %d requests in %d batches (mean batch %.2f, %d cache hits, %d coalesced)",
		st.Served, st.Batches, st.MeanBatchSize, st.CacheHits, st.Coalesced)
	return <-errc
}

// loadgenRun is one (concurrency level, cache mode) result.
type loadgenRun struct {
	Clients       int     `json:"clients"`
	CacheSize     int     `json:"cache_size"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	Seconds       float64 `json:"seconds"`
	RequestsPerS  float64 `json:"rps"`
	Batches       int64   `json:"batches"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	MeanWaitUS    float64 `json:"mean_queue_wait_us"`
	CacheHits     int64   `json:"cache_hits"`
	Coalesced     int64   `json:"coalesced"`
}

// speedup is the cache-on/cache-off throughput ratio at one concurrency
// level — the headline number of BENCH_serving.json.
type speedup struct {
	Clients int     `json:"clients"`
	Speedup float64 `json:"cache_speedup"`
}

// queryMix deterministically picks each client's request sequence: with
// probability repeat a query from the small hot set (repeated traffic the
// cache can absorb), otherwise a rotating pick from the full query list.
// The same (client, request) always maps to the same text, so cache-on and
// cache-off runs serve an identical workload.
type queryMix struct {
	queries []string
	hot     []string
	permill int
	clients int
}

func newQueryMix(queries []string, repeat float64, clients int) queryMix {
	hot := queries[:min(8, len(queries))]
	return queryMix{queries: queries, hot: hot, permill: int(repeat * 1000), clients: clients}
}

func (m queryMix) pick(c, r int) string {
	// Per-(client, request) LCG draw: cheap, seedless, deterministic.
	x := uint32(c)*2654435761 + uint32(r)*40503 + 12345
	x = x*1664525 + 1013904223
	if int(x>>16)%1000 < m.permill {
		// Index with unsigned arithmetic: int(x) would go negative on
		// 32-bit platforms for half of all draws.
		return m.hot[x%uint32(len(m.hot))]
	}
	return m.queries[(c+r*m.clients)%len(m.queries)]
}

// runLoadgen fires o.requests tagging requests at a pool from each
// configured number of concurrent clients — once with the result cache off
// and, when -cache > 0, once more with it on — reporting throughput,
// batching and cache hits (as deltas, since the pool's counters are
// cumulative). The shard taggers are trained once and reused across both
// pools; a drained pool's taggers are safe to re-front.
func runLoadgen(o options, build func(int) (*doctagger.Tagger, error), queries []string) error {
	if len(queries) == 0 {
		return errors.New("loadgen: no test queries")
	}
	var levels []int
	for _, f := range strings.Split(o.clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("loadgen: bad -clients entry %q", f)
		}
		levels = append(levels, n)
	}
	log.Printf("training %d shard(s): %s, %d peers each ...", o.shards, o.protocol, o.peers)
	taggers := make([]*doctagger.Tagger, o.shards)
	for i := range taggers {
		tg, err := build(i)
		if err != nil {
			return fmt.Errorf("loadgen: building shard %d: %w", i, err)
		}
		taggers[i] = tg
	}
	cacheSizes := []int{0}
	if o.cache > 0 {
		cacheSizes = append(cacheSizes, o.cache)
	}
	var runs []loadgenRun
	rps := make(map[[2]int]float64) // (clients, cacheSize) -> rps
	for _, cacheSize := range cacheSizes {
		pool, err := doctagger.NewServer(serverConfig(o, cacheSize), taggers...)
		if err != nil {
			return err
		}
		for _, clients := range levels {
			run := runLevel(pool, newQueryMix(queries, o.repeat, clients), clients, o.requests)
			run.CacheSize = cacheSize
			runs = append(runs, run)
			rps[[2]int{clients, cacheSize}] = run.RequestsPerS
			log.Printf("cache=%-5d clients=%-3d  %8.0f req/s  mean batch %5.2f  mean wait %6.0fµs  hits %d  errors %d",
				cacheSize, clients, run.RequestsPerS, run.MeanBatchSize, run.MeanWaitUS, run.CacheHits, run.Errors)
		}
		pool.Close()
	}
	var speedups []speedup
	if o.cache > 0 {
		for _, clients := range levels {
			off, on := rps[[2]int{clients, 0}], rps[[2]int{clients, o.cache}]
			if off > 0 {
				s := speedup{Clients: clients, Speedup: on / off}
				speedups = append(speedups, s)
				log.Printf("clients=%-3d  cache speedup %.1fx", clients, s.Speedup)
			}
		}
	}
	if o.jsonPath != "" {
		payload := map[string]any{
			"benchmark": "p2pserve-loadgen",
			"protocol":  o.protocol,
			"peers":     o.peers,
			"shards":    o.shards,
			"max_batch": o.maxBatch,
			"cache":     o.cache,
			"repeat":    o.repeat,
			"runs":      runs,
			"speedups":  speedups,
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", o.jsonPath)
	}
	return nil
}

// runLevel drives one concurrency level against the pool and reports the
// deltas of its cumulative counters.
func runLevel(pool *doctagger.Server, mix queryMix, clients, requests int) loadgenRun {
	before := pool.Stats()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		share := requests / clients
		if c < requests%clients {
			share++
		}
		wg.Add(1)
		go func(c, share int) {
			defer wg.Done()
			for r := 0; r < share; r++ {
				// Ignore per-request errors here; the stats deltas
				// report them.
				_, _ = pool.Tag(context.Background(), mix.pick(c, r))
			}
		}(c, share)
	}
	wg.Wait()
	elapsed := time.Since(start)
	after := pool.Stats()
	run := loadgenRun{
		Clients: clients,
		// The Issued delta counts every answer row however produced
		// (served, cache hit, coalesced, deduped) — the same accounting
		// identity cluster clients verify per node.
		Requests:  after.Issued - before.Issued,
		Errors:    after.Errors - before.Errors,
		Seconds:   elapsed.Seconds(),
		Batches:   after.Batches - before.Batches,
		CacheHits: after.CacheHits - before.CacheHits,
		Coalesced: after.Coalesced - before.Coalesced,
	}
	if run.Seconds > 0 {
		run.RequestsPerS = float64(run.Requests) / run.Seconds
	}
	if run.Batches > 0 {
		run.MeanBatchSize = float64(after.BatchedDocs-before.BatchedDocs) / float64(run.Batches)
	}
	if served := after.Served - before.Served; served > 0 {
		run.MeanWaitUS = float64((after.QueueWaitTotal - before.QueueWaitTotal).Microseconds()) / float64(served)
	}
	return run
}
