// Command p2pserve is the serving face of the system: it trains a sharded
// pool of identical tagger swarms over a synthetic delicious-style corpus
// and serves AutoTag queries over HTTP/JSON through the micro-batching
// front-end (doctagger.Server). Concurrent requests coalesce into
// AutoTagBatch calls; /v1/stats shows how well.
//
// Endpoints:
//
//	POST /v1/tag     {"text": "..."} -> {"tags": ["...", ...]}
//	GET  /v1/stats   serving counters + aggregate swarm traffic
//	GET  /healthz    liveness probe
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// and queued requests are answered, then the process exits.
//
// The built-in load generator benchmarks the same pool in-process without
// HTTP overhead:
//
//	p2pserve -loadgen -clients 1,8,64 -requests 256 -json BENCH_serving.json
//
// runs the request mix at each concurrency level and reports throughput
// and the observed batching, optionally as a JSON artifact.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	doctagger "repro"
)

type options struct {
	addr      string
	protocol  string
	peers     int
	shards    int
	seed      int64
	threshold float64
	docsMin   int
	docsMax   int
	numTags   int
	maxBatch  int
	maxDelay  time.Duration
	maxQueue  int
	failFast  bool

	loadgen  bool
	clients  string
	requests int
	jsonPath string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("p2pserve: ")
	var o options
	flag.StringVar(&o.addr, "addr", ":8473", "HTTP listen address")
	flag.StringVar(&o.protocol, "protocol", "cempar", "cempar | pace | centralized | local")
	flag.IntVar(&o.peers, "peers", 8, "swarm size per shard")
	flag.IntVar(&o.shards, "shards", 2, "identically trained tagger swarms in the pool")
	flag.Int64Var(&o.seed, "seed", 1, "corpus and swarm seed")
	flag.Float64Var(&o.threshold, "threshold", 0.5, "confidence threshold for auto-tagging (0 accepts every tag)")
	flag.IntVar(&o.docsMin, "docs-min", 8, "minimum training documents per peer")
	flag.IntVar(&o.docsMax, "docs-max", 12, "maximum training documents per peer")
	flag.IntVar(&o.numTags, "tags", 8, "size of the synthetic tag universe")
	flag.IntVar(&o.maxBatch, "max-batch", 32, "flush a batch at this many requests")
	flag.DurationVar(&o.maxDelay, "max-delay", 2*time.Millisecond, "flush a batch this long after its first request")
	flag.IntVar(&o.maxQueue, "max-queue", 0, "submission queue bound (0 = 8*max-batch)")
	flag.BoolVar(&o.failFast, "fail-fast", false, "reject with 503 when the queue is full instead of blocking")
	flag.BoolVar(&o.loadgen, "loadgen", false, "run the in-process load generator instead of serving HTTP")
	flag.StringVar(&o.clients, "clients", "1,8,64", "loadgen: comma-separated concurrency levels")
	flag.IntVar(&o.requests, "requests", 256, "loadgen: requests per concurrency level")
	flag.StringVar(&o.jsonPath, "json", "", "loadgen: write results to this JSON file")
	flag.Parse()

	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

func run(o options) error {
	log.Printf("training %d shard(s): %s, %d peers each ...", o.shards, o.protocol, o.peers)
	start := time.Now()
	pool, queries, err := buildPool(o)
	if err != nil {
		return err
	}
	log.Printf("pool ready in %v", time.Since(start).Round(time.Millisecond))
	if o.loadgen {
		defer pool.Close()
		return runLoadgen(pool, queries, o)
	}
	return serveHTTP(pool, o)
}

// buildPool trains o.shards identical tagger swarms over one synthetic
// corpus and returns them as a serving pool, along with the corpus's test
// documents for load generation.
func buildPool(o options) (*doctagger.Server, []string, error) {
	docs, _, err := doctagger.GenerateCorpus(doctagger.CorpusConfig{
		Users:          o.peers,
		DocsPerUserMin: o.docsMin,
		DocsPerUserMax: o.docsMax,
		NumTags:        o.numTags,
		Seed:           o.seed,
	})
	if err != nil {
		return nil, nil, err
	}
	train, test := doctagger.SplitCorpus(docs, 0.5, o.seed)
	// On the flag, 0 literally means "accept every tag"; translate to the
	// Config sentinel, which reserves 0 for "use the default".
	threshold := o.threshold
	if threshold == 0 {
		threshold = doctagger.ThresholdNone
	}
	build := func(int) (*doctagger.Tagger, error) {
		tg, err := doctagger.New(doctagger.Config{
			Protocol:  o.protocol,
			Peers:     o.peers,
			Threshold: threshold,
			Seed:      o.seed,
		})
		if err != nil {
			return nil, err
		}
		for _, d := range train {
			if err := tg.AddDocument(d.User%o.peers, d.Text, d.Tags...); err != nil {
				return nil, err
			}
		}
		return tg, tg.Train()
	}
	pool, err := doctagger.NewReplicatedServer(o.shards, doctagger.ServerConfig{
		MaxBatch: o.maxBatch,
		MaxDelay: o.maxDelay,
		MaxQueue: o.maxQueue,
		FailFast: o.failFast,
	}, build)
	if err != nil {
		return nil, nil, err
	}
	queries := make([]string, 0, len(test))
	for _, d := range test {
		queries = append(queries, d.Text)
	}
	return pool, queries, nil
}

// newMux wires the HTTP API around a pool.
func newMux(pool *doctagger.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tag", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Text string `json:"text"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if strings.TrimSpace(req.Text) == "" {
			httpError(w, http.StatusBadRequest, errors.New("empty text"))
			return
		}
		tags, err := pool.Tag(r.Context(), req.Text)
		if err != nil {
			switch {
			case errors.Is(err, doctagger.ErrOverloaded), errors.Is(err, doctagger.ErrServerClosed):
				httpError(w, http.StatusServiceUnavailable, err)
			case errors.Is(err, doctagger.ErrNoAnswer):
				httpError(w, http.StatusBadGateway, err)
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				// The client went away; nothing useful to write.
				httpError(w, http.StatusServiceUnavailable, err)
			default:
				httpError(w, http.StatusInternalServerError, err)
			}
			return
		}
		if tags == nil {
			tags = []string{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"tags": tags})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, pool.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// serveHTTP runs the API until SIGINT/SIGTERM, then drains: the listener
// shuts down first, the pool second, so every accepted request is
// answered.
func serveHTTP(pool *doctagger.Server, o options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: o.addr, Handler: newMux(pool)}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", o.addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		pool.Close()
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down: draining in-flight requests ...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	pool.Close()
	st := pool.Stats()
	log.Printf("drained: served %d requests in %d batches (mean batch %.2f)",
		st.Served, st.Batches, st.MeanBatchSize)
	return <-errc
}

// loadgenRun is one concurrency level's result.
type loadgenRun struct {
	Clients       int     `json:"clients"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	Seconds       float64 `json:"seconds"`
	RequestsPerS  float64 `json:"rps"`
	Batches       int64   `json:"batches"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	MeanWaitUS    float64 `json:"mean_queue_wait_us"`
}

// runLoadgen fires o.requests tagging requests at the pool from each
// configured number of concurrent clients, reporting throughput and the
// batching observed by the dispatcher's own counters (as deltas, since the
// pool's counters are cumulative).
func runLoadgen(pool *doctagger.Server, queries []string, o options) error {
	if len(queries) == 0 {
		return errors.New("loadgen: no test queries")
	}
	var levels []int
	for _, f := range strings.Split(o.clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("loadgen: bad -clients entry %q", f)
		}
		levels = append(levels, n)
	}
	var runs []loadgenRun
	for _, clients := range levels {
		before := pool.Stats()
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			share := o.requests / clients
			if c < o.requests%clients {
				share++
			}
			wg.Add(1)
			go func(c, share int) {
				defer wg.Done()
				for r := 0; r < share; r++ {
					// Ignore per-request errors here; the stats deltas
					// report them.
					_, _ = pool.Tag(context.Background(), queries[(c+r*clients)%len(queries)])
				}
			}(c, share)
		}
		wg.Wait()
		elapsed := time.Since(start)
		after := pool.Stats()
		run := loadgenRun{
			Clients:  clients,
			Requests: after.Served - before.Served,
			Errors:   after.Errors - before.Errors,
			Seconds:  elapsed.Seconds(),
			Batches:  after.Batches - before.Batches,
		}
		if run.Seconds > 0 {
			run.RequestsPerS = float64(run.Requests) / run.Seconds
		}
		if run.Batches > 0 {
			run.MeanBatchSize = float64(after.BatchedDocs-before.BatchedDocs) / float64(run.Batches)
		}
		if run.Requests > 0 {
			run.MeanWaitUS = float64((after.QueueWaitTotal - before.QueueWaitTotal).Microseconds()) / float64(run.Requests)
		}
		runs = append(runs, run)
		log.Printf("clients=%-3d  %6.0f req/s  mean batch %5.2f  mean wait %6.0fµs  errors %d",
			clients, run.RequestsPerS, run.MeanBatchSize, run.MeanWaitUS, run.Errors)
	}
	if o.jsonPath != "" {
		payload := map[string]any{
			"benchmark": "p2pserve-loadgen",
			"protocol":  o.protocol,
			"peers":     o.peers,
			"shards":    o.shards,
			"max_batch": o.maxBatch,
			// Largest batch dispatched across all levels (the pool's
			// counter is cumulative, so it cannot be reported per level).
			"max_batch_seen": pool.Stats().MaxBatchSeen,
			"runs":           runs,
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", o.jsonPath)
	}
	return nil
}
