// Command p2pdoctagger is the end-user face of the system: it tags real
// text files, mirroring the demo UI of Fig. 3/4. Tags persist in a
// .p2pdoctags.json sidecar library (the portable substitute for OS file
// metadata); the collaborative swarm is simulated in-process with an
// optional synthetic community whose peers contribute their own tagged
// collections, exactly like the demonstration setup.
//
// Subcommands:
//
//	tag <file> <tag> [tag...]   manually tag a file
//	untag <file> <tag>          remove a tag (refinement)
//	suggest <file>              show the suggestion cloud for a file
//	auto <file> [file...]       auto-tag files ("AutoTag" button)
//	list                        list the library
//	search <term> [-term...]    filter the library by tags
//	cloud                       render the tag cloud (Fig. 4)
//
// Flags (before the subcommand):
//
//	-library path   sidecar file (default .p2pdoctags.json)
//	-peers N        swarm size including you (default 16)
//	-protocol p     cempar | pace | centralized | local (default cempar)
//	-community      seed other peers with a synthetic tagged community
//	-threshold t    confidence slider (default 0.5)
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	doctagger "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("p2pdoctagger: ")
	var (
		libPath   = flag.String("library", ".p2pdoctags.json", "tag library sidecar file")
		peers     = flag.Int("peers", 16, "swarm size including the local user")
		protoName = flag.String("protocol", "cempar", "cempar | pace | centralized | local")
		community = flag.Bool("community", true, "seed other peers with a synthetic tagged community")
		threshold = flag.Float64("threshold", 0.5, "confidence slider for auto-tagging")
		seed      = flag.Int64("seed", 1, "swarm seed")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	lib, err := doctagger.OpenLibrary(*libPath)
	if err != nil {
		log.Fatal(err)
	}
	app := &cli{
		lib:       lib,
		peers:     *peers,
		protocol:  *protoName,
		community: *community,
		threshold: *threshold,
		seed:      *seed,
	}

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "tag":
		err = app.tag(rest)
	case "untag":
		err = app.untag(rest)
	case "suggest":
		err = app.suggest(rest)
	case "auto":
		err = app.auto(rest)
	case "list":
		err = app.list()
	case "search":
		err = app.search(rest)
	case "cloud":
		err = app.cloud()
	default:
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := lib.Save(); err != nil {
		log.Fatal(err)
	}
}

type cli struct {
	lib       *doctagger.Library
	tagger    *doctagger.Tagger
	peers     int
	protocol  string
	community bool
	threshold float64
	seed      int64
}

// swarm lazily builds and trains the collaborative tagger from (a) every
// manually tagged file in the library and (b) the synthetic community.
func (c *cli) swarm() (*doctagger.Tagger, error) {
	if c.tagger != nil {
		return c.tagger, nil
	}
	tg, err := doctagger.New(doctagger.Config{
		Protocol:  c.protocol,
		Peers:     c.peers,
		Threshold: c.threshold,
		Seed:      c.seed,
	})
	if err != nil {
		return nil, err
	}
	staged := 0
	// The user's manually tagged files train peer 0.
	for _, e := range c.lib.Search() {
		var manual []string
		for _, t := range e.Tags {
			if !e.Auto[t] {
				manual = append(manual, t)
			}
		}
		if len(manual) == 0 {
			continue
		}
		text, err := os.ReadFile(e.Path)
		if err != nil {
			continue // file moved; its metadata stays searchable
		}
		if err := tg.AddDocument(0, string(text), manual...); err != nil {
			return nil, err
		}
		staged++
	}
	// The community contributes the rest of the swarm's knowledge.
	if c.community {
		docs, _, err := doctagger.GenerateCorpus(doctagger.CorpusConfig{
			Users: c.peers - 1, Seed: c.seed + 100,
			DocsPerUserMin: 20, DocsPerUserMax: 40,
		})
		if err != nil {
			return nil, err
		}
		train, _ := doctagger.SplitCorpus(docs, 0.5, c.seed)
		for _, d := range train {
			if err := tg.AddDocument(1+d.User%(c.peers-1), d.Text, d.Tags...); err != nil {
				return nil, err
			}
			staged++
		}
	}
	if staged == 0 {
		return nil, errors.New("nothing to learn from: tag some files first (or enable -community)")
	}
	if err := tg.Train(); err != nil {
		return nil, err
	}
	c.tagger = tg
	return tg, nil
}

func (c *cli) tag(args []string) error {
	if len(args) < 2 {
		return errors.New("usage: tag <file> <tag> [tag...]")
	}
	path, tags := args[0], args[1:]
	if _, err := os.Stat(path); err != nil {
		return err
	}
	c.lib.AddTags(path, tags, false)
	e, _ := c.lib.Get(path)
	fmt.Printf("%s: %v\n", path, e.Tags)
	return nil
}

func (c *cli) untag(args []string) error {
	if len(args) != 2 {
		return errors.New("usage: untag <file> <tag>")
	}
	if err := c.lib.RemoveTag(args[0], args[1]); err != nil {
		return err
	}
	// Refinement: the corrected assignment becomes training signal.
	if text, err := os.ReadFile(args[0]); err == nil {
		if e, err := c.lib.Get(args[0]); err == nil && len(e.Tags) > 0 {
			if tg, err := c.swarm(); err == nil {
				_ = tg.Refine(string(text), e.Tags...)
			}
		}
	}
	fmt.Printf("removed %q from %s\n", args[1], args[0])
	return nil
}

func (c *cli) suggest(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: suggest <file>")
	}
	text, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	tg, err := c.swarm()
	if err != nil {
		return err
	}
	sugg, err := tg.Suggest(string(text))
	if err != nil {
		return err
	}
	fmt.Printf("suggestion cloud for %s (confidence slider at %.2f):\n", args[0], c.threshold)
	for _, s := range sugg {
		marker := " "
		if s.Confidence >= c.threshold {
			marker = "*"
		}
		fmt.Printf("  %s %-20s %.3f\n", marker, s.Tag, s.Confidence)
	}
	return nil
}

func (c *cli) auto(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: auto <file> [file...]")
	}
	tg, err := c.swarm()
	if err != nil {
		return err
	}
	for _, path := range args {
		text, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		tags, err := tg.AutoTag(string(text))
		if err != nil {
			return err
		}
		c.lib.AddTags(path, tags, true)
		fmt.Printf("%s: %v\n", path, tags)
	}
	return nil
}

func (c *cli) list() error {
	for _, e := range c.lib.Search() {
		auto := ""
		for _, t := range e.Tags {
			if e.Auto[t] {
				auto = " (some auto)"
				break
			}
		}
		fmt.Printf("%-40s %v%s\n", e.Path, e.Tags, auto)
	}
	fmt.Printf("%d documents\n", c.lib.Len())
	return nil
}

func (c *cli) search(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: search <term> [-term...]")
	}
	hits := c.lib.Search(args...)
	for _, e := range hits {
		fmt.Printf("%-40s %v\n", e.Path, e.Tags)
	}
	fmt.Printf("%d matches\n", len(hits))
	return nil
}

func (c *cli) cloud() error {
	fmt.Print(c.lib.Cloud(1))
	return nil
}
