package doctagger

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/cempar"
	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/pace"
	"repro/internal/protocol"
	"repro/internal/simnet"
	"repro/internal/textproc"
	"repro/internal/vector"
)

// Protocol names accepted by Config.Protocol.
const (
	ProtocolCEMPaR      = "cempar"
	ProtocolPACE        = "pace"
	ProtocolCentralized = "centralized"
	ProtocolLocal       = "local"
)

// Sentinels for Config fields whose useful "off" setting collides with the
// Go zero value (which keeps the paper's default). They are resolved — and
// out-of-range values rejected — by New.
const (
	// ThresholdNone requests an explicit confidence threshold of 0: every
	// tag the swarm knows clears the bar (Config.Threshold == 0 keeps the
	// default of 0.5 instead).
	ThresholdNone = -1.0
	// MaxTagsUnlimited removes the per-document tag cap
	// (Config.MaxTags == 0 keeps the default of 4 instead).
	MaxTagsUnlimited = -1
)

// Config configures a Tagger. The zero value selects CEMPaR over 16 peers
// with the paper's defaults.
type Config struct {
	// Protocol selects the P2P classification engine: "cempar" (default),
	// "pace", "centralized" or "local".
	Protocol string
	// Peers is the swarm size including the local user (peer 0);
	// default 16.
	Peers int
	// Threshold is the confidence needed to auto-assign a tag — the
	// "Confidence" slider of the demo UI. 0 means the default of 0.5; pass
	// ThresholdNone for an explicit threshold of 0. Other values must lie
	// in (0, 1]; New rejects anything else.
	Threshold float64
	// MaxTags caps tags per document. 0 means the default of 4; pass
	// MaxTagsUnlimited for no cap. Other negative values are rejected by
	// New.
	MaxTags int
	// SensitiveWords are filtered from every document before feature
	// extraction (the privacy filter of §2).
	SensitiveWords []string
	// Regions is CEMPaR's super-peer region count; default 4.
	Regions int
	// TopK is PACE's ensemble size; default 5.
	TopK int
	// Seed makes the swarm deterministic.
	Seed int64
	// Parallel is the worker count for the swarm's CPU-bound phases —
	// per-peer training during Train and batch preprocessing in
	// AutoTagBatch. 0 (the default) uses every core; 1 runs serially.
	// Results are bit-identical at any setting; set 1 when the caller
	// already owns the cores (e.g. experiment sweeps running many swarms
	// concurrently).
	Parallel int
	// Shards is the number of event-loop shards the simulated swarm is
	// partitioned over (conservative PDES). 0 or 1 keeps the simulation
	// serial; larger values execute it concurrently with byte-identical
	// results — worthwhile for very large swarms only.
	Shards int
}

func (c *Config) defaults() error {
	if c.Protocol == "" {
		c.Protocol = ProtocolCEMPaR
	}
	switch c.Protocol {
	case ProtocolCEMPaR, ProtocolPACE, ProtocolCentralized, ProtocolLocal:
	default:
		return fmt.Errorf("doctagger: unknown protocol %q", c.Protocol)
	}
	if c.Peers <= 0 {
		c.Peers = 16
	}
	switch {
	case c.Threshold == ThresholdNone:
		c.Threshold = 0
	case c.Threshold == 0:
		c.Threshold = 0.5
	case c.Threshold < 0 || c.Threshold > 1:
		return fmt.Errorf("doctagger: Threshold %v outside [0,1] (use ThresholdNone for an explicit 0)", c.Threshold)
	}
	switch {
	case c.MaxTags == MaxTagsUnlimited:
		// Kept as-is: tag selection treats a non-positive cap as "no cap".
	case c.MaxTags == 0:
		c.MaxTags = 4
	case c.MaxTags < 0:
		return fmt.Errorf("doctagger: MaxTags %d is negative (use MaxTagsUnlimited for no cap)", c.MaxTags)
	}
	if c.Regions == 0 {
		// Small swarms pool better with fewer, larger regions.
		c.Regions = 2
		if c.Peers >= 32 {
			c.Regions = 4
		}
	}
	return nil
}

// Suggestion is one entry of the suggestion cloud (Fig. 3): a tag with the
// swarm's confidence that it applies.
type Suggestion struct {
	Tag        string
	Confidence float64
}

// NetworkStats summarizes the simulated swarm's traffic.
type NetworkStats struct {
	Messages int64
	Bytes    int64
}

// Tagger is the P2PDocTagger system: a preprocessing pipeline plus a
// simulated peer swarm running a collaborative classification protocol.
// It is not safe for concurrent use.
type Tagger struct {
	cfg     Config
	pre     *textproc.Preprocessor
	net     *simnet.Network
	clf     protocol.Classifier
	refiner protocol.Refiner
	self    simnet.NodeID
	trained bool
	staged  map[simnet.NodeID][]protocol.Doc
	setDocs func(simnet.NodeID, []protocol.Doc)

	// Streaming fast path, wired by New when the protocol answers local
	// queries synchronously (protocol.StreamScorer with StreamsFrom(self)):
	// documents flow from the pooled preprocessing workspace straight into
	// fused scoring with no materialized *vector.Sparse. streamVisit and
	// its callback are built once — per-query closures would escape to the
	// heap on every call — and deposit each answer into the reused
	// streamScores/streamOK pair, which the single-goroutine contract
	// makes safe. selScratch is SelectTagsInto's reused sort buffer.
	stream       protocol.StreamScorer
	streamVisit  func([]vector.Entry)
	streamScores []metrics.ScoredTag
	streamOK     bool
	selScratch   []metrics.ScoredTag
}

// ErrNotTrained is returned by Suggest/AutoTag before Train has run.
var ErrNotTrained = errors.New("doctagger: call Train before requesting tags")

// ErrNoAnswer is returned when the swarm cannot answer a query (e.g. the
// responsible super-peers are unreachable).
var ErrNoAnswer = errors.New("doctagger: the swarm returned no answer")

// New builds a Tagger with a fresh simulated swarm.
func New(cfg Config) (*Tagger, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	t := &Tagger{
		cfg: cfg,
		pre: textproc.NewPreprocessor(nil, textproc.Options{
			Weighting: textproc.TermFrequency,
			Normalize: true,
		}),
		net: simnet.New(simnet.Options{
			Latency: simnet.UniformLatency{Min: 10 * time.Millisecond, Max: 60 * time.Millisecond},
			Seed:    cfg.Seed + 1,
			Shards:  cfg.Shards,
		}),
		self:   0,
		staged: make(map[simnet.NodeID][]protocol.Doc),
	}
	t.pre.AddSensitiveWords(cfg.SensitiveWords...)
	ids := make([]simnet.NodeID, cfg.Peers)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	switch cfg.Protocol {
	case ProtocolCEMPaR:
		var s *cempar.System
		ring := dht.New(t.net, ids, func(id simnet.NodeID) simnet.Handler {
			return simnet.HandlerFunc(func(nn *simnet.Network, m simnet.Message) {
				if s != nil {
					s.Handler(id).HandleMessage(nn, m)
				}
			})
		})
		s = cempar.New(ring, cempar.Config{
			Regions: cfg.Regions, Weighted: true, Seed: cfg.Seed + 2,
			Parallel: cfg.Parallel,
		})
		t.clf, t.refiner, t.setDocs = s, s, s.SetDocs
	case ProtocolPACE:
		s := pace.New(t.net, ids, pace.Config{TopK: cfg.TopK, Seed: cfg.Seed + 3, Parallel: cfg.Parallel})
		t.clf, t.refiner, t.setDocs = s, s, s.SetDocs
	case ProtocolCentralized:
		s := baseline.NewCentralized(t.net, ids, baseline.CentralizedConfig{
			Coordinator: ids[0], Seed: cfg.Seed + 4, Parallel: cfg.Parallel,
		})
		t.clf, t.refiner, t.setDocs = s, s, s.SetDocs
	case ProtocolLocal:
		s := baseline.NewLocal(t.net, ids, 1, cfg.Seed+5)
		s.Parallel = cfg.Parallel
		t.clf, t.refiner, t.setDocs = s, s, s.SetDocs
	}
	if ss, ok := t.clf.(protocol.StreamScorer); ok && ss.StreamsFrom(t.self) {
		t.stream = ss
		cb := func(sc []metrics.ScoredTag, ok bool) {
			// The scores live in the protocol's reused scratch, valid only
			// during the callback: copy into the tagger's own reused slice.
			t.streamOK = ok
			t.streamScores = append(t.streamScores[:0], sc...)
		}
		t.streamVisit = func(entries []vector.Entry) {
			t.stream.PredictEntries(t.self, entries, cb)
		}
	}
	return t, nil
}

// AddDocument manually tags a document at a peer (0 = the local user)
// before training — the bootstrap phase of Fig. 1 ("in the beginning ...
// users have to manually tag some of their documents"). After Train it
// behaves like Refine at that peer.
func (t *Tagger) AddDocument(peer int, text string, tags ...string) error {
	if peer < 0 || peer >= t.cfg.Peers {
		return fmt.Errorf("doctagger: peer %d out of range [0,%d)", peer, t.cfg.Peers)
	}
	if len(tags) == 0 {
		return errors.New("doctagger: a manually tagged document needs at least one tag")
	}
	doc := protocol.Doc{X: t.pre.Vectorize(text), Tags: append([]string(nil), tags...)}
	id := simnet.NodeID(peer)
	if t.trained {
		t.refiner.Refine(id, doc)
		t.run()
		return nil
	}
	t.staged[id] = append(t.staged[id], doc)
	return nil
}

// Train runs the collaborative learning round over everything staged so
// far. It can be called again later to incorporate newly added documents.
func (t *Tagger) Train() error {
	if len(t.staged) == 0 && !t.trained {
		return errors.New("doctagger: no manually tagged documents to learn from")
	}
	if !t.trained {
		for id, docs := range t.staged {
			t.setDocs(id, docs)
		}
		t.staged = nil
		t.clf.Fit()
		t.run()
		t.trained = true
		return nil
	}
	// Already trained: nothing staged (AddDocument refines immediately).
	return nil
}

// run drives the simulated network to quiescence.
func (t *Tagger) run() { t.net.Run(0) }

// predictScores answers one local query, streaming when the protocol
// supports it. The returned scores may live in reused scratch: consume
// them before the next query.
func (t *Tagger) predictScores(text string) ([]metrics.ScoredTag, bool) {
	if t.stream != nil {
		t.pre.VectorizeInto(text, t.streamVisit)
		// Streaming protocols answer synchronously and send no traffic;
		// run() is a no-op kept for engine-accounting symmetry.
		t.run()
		return t.streamScores, t.streamOK
	}
	x := t.pre.Vectorize(text)
	var scores []metrics.ScoredTag
	answered := false
	t.clf.Predict(t.self, x, func(sc []metrics.ScoredTag, ok bool) {
		scores, answered = sc, ok
	})
	t.run()
	return scores, answered
}

// Suggest returns the suggestion cloud for a document: every known tag
// with its confidence, highest first ("relevant tags will be shown in the
// Suggestion Cloud panel ... tags with higher confidence will be in larger
// font").
func (t *Tagger) Suggest(text string) ([]Suggestion, error) {
	if !t.trained {
		return nil, ErrNotTrained
	}
	scores, answered := t.predictScores(text)
	if !answered {
		return nil, ErrNoAnswer
	}
	out := make([]Suggestion, 0, len(scores))
	for _, s := range scores {
		out = append(out, Suggestion{Tag: s.Tag, Confidence: s.Score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Tag < out[j].Tag
	})
	return out, nil
}

// AutoTag assigns tags to a document using the confidence threshold — the
// "AutoTag" button of Fig. 3. A document always receives at least one tag
// (the single best suggestion) unless the swarm cannot answer.
func (t *Tagger) AutoTag(text string) ([]string, error) {
	if !t.trained {
		return nil, ErrNotTrained
	}
	scores, answered := t.predictScores(text)
	if !answered {
		return nil, ErrNoAnswer
	}
	var tags []string
	tags, t.selScratch = protocol.SelectTagsInto(nil, scores, t.selScratch, t.cfg.Threshold, t.cfg.MaxTags)
	return tags, nil
}

// AutoTagBatch assigns tags to many documents in one pass and returns one
// tag list per input text, in input order. It produces exactly what
// calling AutoTag on each text in sequence would, but restructures the
// work for throughput. Under a streaming protocol (local, PACE,
// coordinator-origin centralized) each document flows through reused
// scratch — pooled workspace to fused scores to selected tags — with no
// intermediate vectors at all. Otherwise term extraction fans out over
// all cores (preprocessing is pure per-document CPU work; lexicon id
// assignment stays serial in input order so feature ids are
// reproducible), and every swarm query is issued before the simulated
// network runs once, instead of draining the event queue per document.
//
// Documents the swarm cannot answer get a nil tag list rather than
// aborting the batch; the first such failure is reported as an
// ErrNoAnswer-wrapping error alongside the remaining results. Answered
// documents always get a non-nil list (empty if no tag clears the
// threshold), so a nil row unambiguously means "unanswered" even when the
// batch carries an error for a different row — the serving layer relies
// on this to fail exactly the right requests.
func (t *Tagger) AutoTagBatch(texts []string) ([][]string, error) {
	if !t.trained {
		return nil, ErrNotTrained
	}
	if t.stream != nil {
		// Streaming protocols answer each query synchronously, so the
		// batch flows one document at a time through the tagger's reused
		// scratch — O(1) intermediate state instead of a materialized
		// per-batch vector slice — and resolves each row immediately.
		// Answers cannot depend on issue order (queries send no traffic
		// and mutate no protocol state), so per-doc resolution produces
		// exactly what issue-all-then-run would.
		out := make([][]string, len(texts))
		var firstErr error
		for i, text := range texts {
			t.pre.VectorizeInto(text, t.streamVisit)
			if !t.streamOK {
				if firstErr == nil {
					firstErr = fmt.Errorf("doctagger: document %d: %w", i, ErrNoAnswer)
				}
				continue
			}
			var tags []string
			tags, t.selScratch = protocol.SelectTagsInto(nil, t.streamScores, t.selScratch, t.cfg.Threshold, t.cfg.MaxTags)
			if tags == nil {
				tags = []string{}
			}
			out[i] = tags
		}
		t.run()
		return out, firstErr
	}
	vecs := t.pre.VectorizeBatch(texts, t.cfg.Parallel)
	type answer struct {
		scores []metrics.ScoredTag
		ok     bool
	}
	answers := make([]answer, len(texts))
	for i, x := range vecs {
		t.clf.Predict(t.self, x, func(sc []metrics.ScoredTag, ok bool) {
			answers[i] = answer{scores: sc, ok: ok}
		})
	}
	t.run()
	out := make([][]string, len(texts))
	var firstErr error
	for i, a := range answers {
		if !a.ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("doctagger: document %d: %w", i, ErrNoAnswer)
			}
			continue
		}
		tags := protocol.SelectTags(a.scores, t.cfg.Threshold, t.cfg.MaxTags)
		if tags == nil {
			tags = []string{}
		}
		out[i] = tags
	}
	return out, firstErr
}

// Refine records the user's corrected tags for a document at the local
// peer and updates the swarm's models ("upon the refinement of tags,
// P2PDocTagger will automatically update the classification model(s) in
// the back-end").
func (t *Tagger) Refine(text string, tags ...string) error {
	if !t.trained {
		return ErrNotTrained
	}
	if len(tags) == 0 {
		return errors.New("doctagger: refinement needs at least one tag")
	}
	doc := protocol.Doc{X: t.pre.Vectorize(text), Tags: append([]string(nil), tags...)}
	t.refiner.Refine(t.self, doc)
	t.run()
	return nil
}

// SetThreshold moves the confidence slider. Unlike Config.Threshold, the
// value is literal: 0 means "accept every tag", no sentinel needed. Values
// outside [0, 1] are rejected — confidences are probabilities, so an
// out-of-range threshold would silently pin tagging to "everything" or
// "nothing" — and leave the current threshold unchanged.
func (t *Tagger) SetThreshold(th float64) error {
	if th < 0 || th > 1 {
		return fmt.Errorf("doctagger: threshold %v outside [0,1]", th)
	}
	t.cfg.Threshold = th
	return nil
}

// Threshold reports the current confidence threshold.
func (t *Tagger) Threshold() float64 { return t.cfg.Threshold }

// Protocol reports the active protocol's display name.
func (t *Tagger) Protocol() string { return t.clf.Name() }

// Stats reports the traffic the swarm has exchanged so far.
func (t *Tagger) Stats() NetworkStats {
	s := t.net.Stats()
	return NetworkStats{Messages: s.MessagesSent, Bytes: s.BytesSent}
}

// ExplainDocument returns the n highest-weighted preprocessed terms of a
// document — what the classifiers actually see after stop-word removal and
// stemming. Useful for demo walk-throughs and debugging suggestions.
func (t *Tagger) ExplainDocument(text string, n int) []string {
	return t.pre.TopTerms(t.pre.Vectorize(text), n)
}
