//go:build !race

package doctagger

import (
	"testing"
)

// Allocation-regression pins for the end-to-end streaming tagging path
// (build-gated out under -race, which instruments allocations).

// TestStreamingAutoTagAllocBudget pins the pure local score path at ≤2
// allocs/op end to end: with the streaming pipeline — pooled workspace
// into fused scoring into SelectTagsInto — the only steady-state
// allocation left is the returned tag slice itself.
func TestStreamingAutoTagAllocBudget(t *testing.T) {
	tg, err := New(Config{Protocol: ProtocolLocal, Peers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	corpusFor(t, tg, 4)
	if err := tg.Train(); err != nil {
		t.Fatal(err)
	}
	if tg.stream == nil {
		t.Fatal("local protocol did not wire the streaming path")
	}
	const query = "a new album with a soft piano melody and a travel itinerary"
	if _, err := tg.AutoTag(query); err != nil { // warm pools and scratch
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := tg.AutoTag(query); err != nil {
			t.Fatal(err)
		}
	})
	if got > 2 {
		t.Errorf("streaming AutoTag: %.1f allocs/op, budget 2", got)
	}
}
